//! The S/C **Controller** (§III): executes an MV refresh run according to
//! the optimizer's plan.
//!
//! For each node in the plan's execution order the controller runs the
//! node's logical plan, reading inputs from the Memory Catalog when present
//! and from external storage otherwise. Flagged nodes are created directly
//! in memory and handed to a *background materializer* thread that persists
//! them in parallel with downstream computation (Figure 6); a flagged entry
//! is released as soon as (a) all of its consumers have executed and (b)
//! its materialization has finished, so every MV is always fully persisted
//! by the end of the run — S/C never weakens the SLA.
//!
//! ## Execution lanes
//!
//! The paper issues MV statements sequentially on one compute lane; this
//! controller can additionally run the refresh on a pool of `lanes` worker
//! threads ([`RefreshConfig`]). With `lanes > 1` a node starts as soon as
//! every dependency's output is *readable* (resident in the Memory Catalog
//! for flagged parents, persisted for unflagged ones) and a lane is free.
//! Two invariants keep the parallel run faithful to the plan:
//!
//! * **Flag admission follows `plan.order`.** Completed flagged nodes
//!   enter the Memory Catalog in plan order, so admissions and the
//!   catalog's strict budget accounting replay the optimizer's model even
//!   when compute finishes out of order (an admission that would overflow
//!   the budget falls back to a blocking write exactly as in the
//!   sequential path).
//! * **Release on last consumer.** An entry leaves the catalog once all
//!   of its consumers have executed, identical to the sequential path, so
//!   every run ends with a drained catalog.
//!
//! MV contents are a pure function of their inputs, so sequential and
//! parallel runs produce byte-identical tables.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use sc_core::{CostModel, FlagSet, ModeReason, NodeMode, Plan, RefreshMode};
use sc_dag::NodeId;

use crate::exec::TableDelta;
use crate::plan::{DeltaSource, LogicalPlan, TableSource};
use crate::storage::{DeltaStore, DiskCatalog, MemoryCatalog, Observation, ObservationStore};
use crate::table::Table;
use crate::{EngineError, Result};

/// One MV update: a name and the query producing its contents.
#[derive(Debug, Clone)]
pub struct MvDefinition {
    /// Output table name (other MVs reference it by this name).
    pub name: String,
    /// The query computing the MV.
    pub plan: LogicalPlan,
}

impl MvDefinition {
    /// Creates a definition.
    pub fn new(name: impl Into<String>, plan: LogicalPlan) -> Self {
        MvDefinition {
            name: name.into(),
            plan,
        }
    }
}

/// Controller tuning.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// If true (default), a flagged node whose output unexpectedly exceeds
    /// the remaining Memory Catalog budget falls back to a blocking disk
    /// materialization instead of failing the run. The optimizer plans from
    /// *estimated* sizes, so a small estimation error must not abort a
    /// refresh.
    pub fallback_on_memory_pressure: bool,
    /// Cost model consulted by [`RefreshMode::Auto`] when deciding whether
    /// a node is maintained incrementally or recomputed
    /// ([`CostModel::incremental_refresh_wins`]).
    pub cost_model: CostModel,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            fallback_on_memory_pressure: true,
            cost_model: CostModel::paper(),
        }
    }
}

/// Parallelism and maintenance settings for a refresh run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshConfig {
    /// Number of compute lanes (worker threads) executing DAG nodes.
    /// `1` reproduces the paper's sequential controller exactly.
    pub lanes: usize,
    /// Bounded run-ahead window for the multi-lane executor: a node may
    /// only start once every node more than this many plan positions ahead
    /// of it has computed. `None` (default) derives the window from the
    /// lane count via [`sc_core::run_ahead_window`]; operators can trade
    /// transient out-of-catalog memory against lane utilization by setting
    /// it explicitly.
    pub run_ahead_window: Option<usize>,
    /// Full-vs-incremental maintenance policy, effective only when a
    /// [`DeltaStore`] is attached ([`Controller::with_delta_store`]).
    pub refresh_mode: RefreshMode,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig {
            lanes: 1,
            run_ahead_window: None,
            refresh_mode: RefreshMode::Auto,
        }
    }
}

impl RefreshConfig {
    /// Config running on `lanes` compute lanes (clamped to at least 1).
    pub fn with_lanes(lanes: usize) -> Self {
        RefreshConfig {
            lanes: lanes.max(1),
            ..RefreshConfig::default()
        }
    }

    /// Overrides the multi-lane run-ahead window.
    pub fn with_run_ahead_window(mut self, window: usize) -> Self {
        self.run_ahead_window = Some(window);
        self
    }

    /// Overrides the maintenance policy.
    pub fn with_refresh_mode(mut self, mode: RefreshMode) -> Self {
        self.refresh_mode = mode;
        self
    }
}

/// Where a node's maintenance-mode decision got its cost numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostProvenance {
    /// The mode was forced — by policy, shape, or catalog state — without
    /// comparing costs at all.
    Policy,
    /// [`RefreshMode::Auto`] compared the static size-based estimates.
    Estimated,
    /// [`RefreshMode::Auto`] consulted persisted runtime observations for
    /// this node's identity ([`ObservationStore::summary`]).
    Observed,
}

/// Timing breakdown for one executed node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMetrics {
    /// MV name.
    pub name: String,
    /// How the node was brought up to date (full recompute, incremental
    /// delta maintenance, or skipped because nothing changed).
    pub mode: NodeMode,
    /// Why mode planning settled on [`NodeMetrics::mode`] for this node.
    pub reason: ModeReason,
    /// Size of the node's propagated delta (0 under full recompute).
    pub delta_bytes: u64,
    /// Bytes persisted by the append path: the encoded delta-sized
    /// segment an insert-only incremental refresh appends instead of
    /// rewriting the MV. 0 when the node rewrote (full or
    /// delta-rewrite/merge) or was skipped.
    pub appended_bytes: u64,
    /// Number of storage segments backing the MV after the run (1 =
    /// canonical single-segment form; grows by one per appended delta
    /// until a recompute or [`crate::storage::DiskCatalog::compact`]
    /// collapses it).
    pub segments: usize,
    /// Seconds spent reading inputs from external storage.
    pub read_s: f64,
    /// Seconds spent in operators (total node time minus storage reads).
    pub compute_s: f64,
    /// Seconds of *blocking* write (0 for flagged nodes — their write is
    /// backgrounded).
    pub write_s: f64,
    /// Output size in bytes.
    pub output_bytes: u64,
    /// Output row count.
    pub rows: usize,
    /// Whether this node was kept in the Memory Catalog.
    pub flagged: bool,
    /// Whether a flagged node fell back to disk (memory pressure).
    pub fell_back: bool,
    /// How many inputs were served from the Memory Catalog.
    pub memory_reads: usize,
    /// How many inputs were read from external storage.
    pub disk_reads: usize,
    /// Whether the mode decision was forced, estimated, or observed.
    pub cost: CostProvenance,
}

impl NodeMetrics {
    /// Metrics for a node the run skipped outright (no delta reached it):
    /// no I/O, no compute, nothing flagged.
    pub fn skipped(name: impl Into<String>) -> Self {
        NodeMetrics {
            name: name.into(),
            mode: NodeMode::Skipped,
            reason: ModeReason::NoChurn,
            delta_bytes: 0,
            appended_bytes: 0,
            segments: 0,
            read_s: 0.0,
            compute_s: 0.0,
            write_s: 0.0,
            output_bytes: 0,
            rows: 0,
            flagged: false,
            fell_back: false,
            memory_reads: 0,
            disk_reads: 0,
            cost: CostProvenance::Policy,
        }
    }
}

/// Outcome of a refresh run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// End-to-end wall time: from run start until every MV (including
    /// background materializations) is persisted.
    pub total_s: f64,
    /// Per-node breakdowns, in plan-order (regardless of the wall-clock
    /// completion order under parallel execution).
    pub nodes: Vec<NodeMetrics>,
    /// Peak Memory Catalog usage observed during the run.
    pub peak_memory_bytes: u64,
    /// Seconds spent at the end of the run waiting for the background
    /// materializer to drain.
    pub final_drain_s: f64,
    /// Retained-file deletes that failed during this run's epoch GC —
    /// observable GC debt (see `DiskCatalog::gc_failed_deletes`).
    pub gc_failed_deletes: u64,
}

impl RunMetrics {
    /// Total blocking read seconds across nodes.
    pub fn total_read_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.read_s).sum()
    }

    /// Total compute seconds across nodes.
    pub fn total_compute_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.compute_s).sum()
    }

    /// Total blocking write seconds across nodes.
    pub fn total_write_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.write_s).sum()
    }
}

/// Executes MV refresh runs against a disk catalog + memory catalog pair.
pub struct Controller<'a> {
    disk: &'a DiskCatalog,
    memory: &'a MemoryCatalog,
    config: ControllerConfig,
    refresh: RefreshConfig,
    deltas: Option<&'a DeltaStore>,
    observations: Option<&'a ObservationStore>,
}

/// Catalog/storage name under which a node's *output delta* travels (the
/// `#` cannot appear in a scanned table name's path form, and spilled
/// delta files are removed at the end of every run).
fn delta_entry_name(mv: &str) -> String {
    format!("{mv}#delta")
}

/// Batches a run's point-in-time snapshot holds for `table`.
fn snapshot_batches(snapshot: &HashMap<String, TableDelta>, table: &str) -> usize {
    snapshot.get(table).map_or(0, |d| d.batches().len())
}

/// Per-run incremental-maintenance plan, fixed before execution so the
/// sequential and multi-lane executors make identical choices.
struct DeltaPlan {
    /// How each node is brought up to date.
    modes: Vec<NodeMode>,
    /// Why each node ended up in its mode (surfaced in refresh reports).
    reasons: Vec<ModeReason>,
    /// Whether the node's output delta is computed (row-wise incremental).
    publishes: Vec<bool>,
    /// Flagged nodes whose Memory Catalog payload is their delta rather
    /// than their full output (every consumer maintains incrementally, so
    /// only delta-sized budget is reserved).
    delta_payload: Vec<bool>,
    /// Nodes that must spill their delta to a storage file because some
    /// incremental consumer cannot read it from the catalog.
    spill: Vec<bool>,
    /// Nodes persisted by *appending* their delta's insert rows as a new
    /// storage segment instead of rewriting the MV: insert-only row-wise
    /// shapes whose full output is never needed in the Memory Catalog
    /// (unflagged, flagged-without-consumers, or flagged with a
    /// delta-sized payload). The append path reads O(delta + build
    /// sides) and writes O(delta) — the incremental win finally scales
    /// with MV size.
    append: Vec<bool>,
    /// Segment counts of the stored MVs before the run (0 when absent),
    /// captured at planning time for the metrics' segment accounting.
    pre_segments: Vec<usize>,
    /// Where each node's mode decision got its cost numbers.
    cost: Vec<CostProvenance>,
    /// Effective flags: the plan's flags minus skipped nodes.
    flagged: FlagSet,
}

impl DeltaPlan {
    /// The all-full plan used when no delta log is attached.
    fn full(plan: &Plan, n: usize) -> Self {
        DeltaPlan {
            modes: vec![NodeMode::Full; n],
            reasons: vec![ModeReason::FullPolicy; n],
            publishes: vec![false; n],
            delta_payload: vec![false; n],
            spill: vec![false; n],
            append: vec![false; n],
            pre_segments: vec![0; n],
            cost: vec![CostProvenance::Policy; n],
            flagged: plan.flagged.clone(),
        }
    }
}

/// Table resolver that prefers the Memory Catalog and accounts read time.
struct RunSource<'a> {
    memory: &'a MemoryCatalog,
    disk: &'a DiskCatalog,
    read_s: Cell<f64>,
    memory_reads: Cell<usize>,
    disk_reads: Cell<usize>,
    // Cache of disk reads within a single node execution so a plan that
    // scans the same table twice doesn't pay twice (engines buffer this).
    node_cache: RefCell<HashMap<String, Arc<Table>>>,
}

impl<'a> RunSource<'a> {
    fn new(memory: &'a MemoryCatalog, disk: &'a DiskCatalog) -> Self {
        RunSource {
            memory,
            disk,
            read_s: Cell::new(0.0),
            memory_reads: Cell::new(0),
            disk_reads: Cell::new(0),
            node_cache: RefCell::new(HashMap::new()),
        }
    }
}

impl TableSource for RunSource<'_> {
    fn table(&self, name: &str) -> Result<Arc<Table>> {
        if let Some(t) = self.memory.get(name) {
            self.memory_reads.set(self.memory_reads.get() + 1);
            return Ok(t);
        }
        if let Some(t) = self.node_cache.borrow().get(name) {
            return Ok(t.clone());
        }
        let started = Instant::now();
        let t = Arc::new(self.disk.read_table(name)?);
        self.read_s
            .set(self.read_s.get() + started.elapsed().as_secs_f64());
        self.disk_reads.set(self.disk_reads.get() + 1);
        self.node_cache
            .borrow_mut()
            .insert(name.to_string(), t.clone());
        Ok(t)
    }
}

/// Resolves input deltas for one node: base-table deltas come from the
/// run's point-in-time snapshot of the delta log (so batches ingested
/// mid-run are invisible to every node alike), parent-MV deltas from the
/// parent's published `#delta` entry via the regular table source (Memory
/// Catalog first, spilled storage file second) — so delta reads are
/// delta-sized I/O on the same channels as everything else.
struct RunDeltaSource<'a, 'b> {
    pending: Option<&'b HashMap<String, TableDelta>>,
    /// MV name -> node index for MVs in the current run.
    index: &'b HashMap<&'b str, usize>,
    source: &'b RunSource<'a>,
}

impl DeltaSource for RunDeltaSource<'_, '_> {
    fn delta(&self, name: &str) -> Result<TableDelta> {
        if self.index.contains_key(name) {
            let encoded = self.source.table(&delta_entry_name(name))?;
            return TableDelta::from_table(&encoded);
        }
        self.pending
            .and_then(|m| m.get(name))
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(format!("{name} (pending delta)")))
    }
}

/// Result of maintaining one node incrementally.
struct IncrementalOutput {
    /// The node's new contents (old contents + applied delta) — or, on
    /// the append path, just the rows to append as a new segment (the
    /// caller knows which via its own `DeltaPlan::append` entry).
    output: Table,
    /// The node's output delta, for row-wise plans (aggregate merges do
    /// not publish one).
    delta: Option<TableDelta>,
    /// Size of the propagated delta.
    delta_bytes: u64,
}

/// Maintains `mv` incrementally: delta-spine plans propagate the input
/// delta (probing any join's unchanged build side, read in full via
/// `source`) and apply it to the stored contents; an aggregate root merges
/// its input's delta into the stored result. With `append` set (an
/// insert-only row-wise shape), the stored contents are **not read at
/// all**: the propagated delta's insert rows become a new storage segment,
/// making the whole node O(delta + build sides) instead of O(MV).
fn execute_incremental(
    mv: &MvDefinition,
    source: &RunSource<'_>,
    deltas: &RunDeltaSource<'_, '_>,
    append: bool,
) -> Result<IncrementalOutput> {
    if append {
        let delta_out = mv.plan.execute_delta(deltas, source)?;
        let output = delta_out.insert_rows_table()?;
        return Ok(IncrementalOutput {
            output,
            delta_bytes: delta_out.byte_size(),
            delta: Some(delta_out),
        });
    }
    if let LogicalPlan::Aggregate {
        input,
        group_by,
        aggs,
    } = &mv.plan
    {
        let delta_in = input.execute_delta(deltas, source)?;
        let current = source.table(&mv.name)?;
        let triples: Vec<_> = aggs
            .iter()
            .map(|a| (a.func, a.column.clone(), a.alias.clone()))
            .collect();
        let output = crate::exec::merge_aggregate(&current, &delta_in, group_by, &triples)?;
        return Ok(IncrementalOutput {
            output,
            delta: None,
            delta_bytes: delta_in.byte_size(),
        });
    }
    if let LogicalPlan::Distinct { input } = &mv.plan {
        // Like the aggregate merge: absorb the spine's delta into the
        // stored output without publishing one (whether a delta row
        // survives the dedup is unknowable to consumers).
        let delta_in = input.execute_delta(deltas, source)?;
        let current = source.table(&mv.name)?;
        let output = crate::exec::merge_distinct(&current, &delta_in)?;
        return Ok(IncrementalOutput {
            output,
            delta: None,
            delta_bytes: delta_in.byte_size(),
        });
    }
    let delta_out = mv.plan.execute_delta(deltas, source)?;
    let current = source.table(&mv.name)?;
    let output = delta_out.apply(&current)?;
    Ok(IncrementalOutput {
        output,
        delta_bytes: delta_out.byte_size(),
        delta: Some(delta_out),
    })
}

/// Input/output metrics captured by a worker while computing one node.
struct ComputedNode {
    /// Full output — or, on the append path, just the rows to append.
    output: Arc<Table>,
    /// Whether `output` is an append segment (see `DeltaPlan::append`).
    append: bool,
    /// Stored-output size for metrics: the in-memory output size, or (on
    /// the append path, where the full output is never materialized) the
    /// stored bytes after the append commits.
    output_bytes: u64,
    /// Output row count on the same basis as `output_bytes`.
    rows: usize,
    /// Encoded appended-segment bytes (0 off the append path).
    appended_bytes: u64,
    /// Encoded output delta, when the node publishes one that the catalog
    /// or a fallback spill may need.
    delta_table: Option<Arc<Table>>,
    delta_bytes: u64,
    read_s: f64,
    compute_s: f64,
    /// Blocking delta-spill write performed during compute.
    spill_write_s: f64,
    memory_reads: usize,
    disk_reads: usize,
}

/// Work items handed to pool workers under parallel execution.
enum LaneTask {
    /// Execute the node's logical plan.
    Compute(usize),
    /// Blocking materialization of a computed output (unflagged nodes and
    /// memory-pressure fallbacks). `spill` carries an encoded delta that
    /// must also land on storage (a delta-payload admission that fell
    /// back, whose incremental consumers now read the spill). With
    /// `append`, the output is a delta segment appended to the stored MV
    /// instead of replacing it.
    Write {
        idx: usize,
        output: Arc<Table>,
        spill: Option<Arc<Table>>,
        fell_back: bool,
        append: bool,
    },
}

/// Messages from workers / the background materializer to the coordinator.
enum LaneMsg {
    Computed {
        idx: usize,
        node: ComputedNode,
    },
    ComputeFailed {
        error: EngineError,
    },
    Written {
        idx: usize,
        write_s: f64,
        fell_back: bool,
        result: Result<u64>,
    },
    BgWritten {
        idx: usize,
        result: Result<u64>,
    },
}

impl<'a> Controller<'a> {
    /// Creates a controller over the two catalogs.
    pub fn new(disk: &'a DiskCatalog, memory: &'a MemoryCatalog) -> Self {
        Controller {
            disk,
            memory,
            config: ControllerConfig::default(),
            refresh: RefreshConfig::default(),
            deltas: None,
            observations: None,
        }
    }

    /// Attaches the pending delta log, enabling incremental maintenance
    /// (per [`RefreshConfig::refresh_mode`]). A successful refresh consumes
    /// the log.
    pub fn with_delta_store(mut self, deltas: &'a DeltaStore) -> Self {
        self.deltas = Some(deltas);
        self
    }

    /// Attaches a runtime-observation store: [`RefreshMode::Auto`]
    /// decisions consult its per-identity summaries (falling back to the
    /// static estimates on a fingerprint miss), and every *successful*
    /// refresh appends the run's representative node metrics to it. A
    /// failed run records nothing — its numbers would poison the feedback
    /// map — and neither do fallback-mode nodes (poisoned-log or
    /// unsupported-shape full recomputes), whose costs do not represent
    /// the node's steady-state behavior.
    pub fn with_observations(mut self, observations: &'a ObservationStore) -> Self {
        self.observations = Some(observations);
        self
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: ControllerConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the parallelism settings.
    pub fn with_refresh_config(mut self, refresh: RefreshConfig) -> Self {
        self.refresh = refresh;
        self
    }

    /// Shorthand for [`Controller::with_refresh_config`].
    pub fn with_lanes(self, lanes: usize) -> Self {
        self.with_refresh_config(RefreshConfig::with_lanes(lanes))
    }

    /// Derives the dependency edges among `mvs` (an edge `i -> j` when MV
    /// `j` scans MV `i`'s output).
    pub fn dependencies(mvs: &[MvDefinition]) -> Vec<(usize, usize)> {
        let index: HashMap<&str, usize> = mvs
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.as_str(), i))
            .collect();
        let mut edges = Vec::new();
        for (j, mv) in mvs.iter().enumerate() {
            for input in mv.plan.input_tables() {
                if let Some(&i) = index.get(input.as_str()) {
                    edges.push((i, j));
                }
            }
        }
        edges
    }

    /// Checks that the plan covers exactly the MV set and that its order
    /// respects every derived dependency; returns the edge list.
    fn validate(&self, mvs: &[MvDefinition], plan: &Plan) -> Result<Vec<(usize, usize)>> {
        let n = mvs.len();
        if plan.order.len() != n || plan.flagged.len() != n {
            return Err(EngineError::InvalidPlan(format!(
                "plan covers {} nodes, workload has {n}",
                plan.order.len()
            )));
        }
        let mut seen = vec![false; n];
        for &v in &plan.order {
            if v.index() >= n || seen[v.index()] {
                return Err(EngineError::InvalidPlan(format!(
                    "order is not a permutation: {v}"
                )));
            }
            seen[v.index()] = true;
        }
        let edges = Self::dependencies(mvs);
        let mut pos = vec![0usize; n];
        for (p, &v) in plan.order.iter().enumerate() {
            pos[v.index()] = p;
        }
        for &(i, j) in &edges {
            if pos[i] > pos[j] {
                return Err(EngineError::InvalidPlan(format!(
                    "order executes '{}' before its dependency '{}'",
                    mvs[j].name, mvs[i].name
                )));
            }
        }
        Ok(edges)
    }

    /// Fixes every node's maintenance mode before execution (shared by the
    /// sequential and multi-lane paths, so lane count cannot change what a
    /// refresh computes).
    ///
    /// Walking `plan.order` (a topological order): a node can be
    /// maintained incrementally only when the delta of *every* input is
    /// known — base tables always are (the attached log), parent MVs only
    /// when they are themselves skipped or publish a delta. A node all of
    /// whose input deltas are empty is skipped outright. Otherwise the
    /// operator tree must support the delta's shape
    /// ([`LogicalPlan::incremental_support`]), every static build-side
    /// table of a join spine must be *unchanged* — its stored contents are
    /// the pre-image the delta-join probes, so both pre-images stay
    /// readable until the node runs (the spine's via the pending log /
    /// published parent deltas, the build's as its untouched table) — the
    /// MV must already exist on storage, and — under [`RefreshMode::Auto`]
    /// — the cost model must predict a win over recomputation (charging
    /// the incremental path for the full build-side reads it still pays).
    fn plan_deltas(
        &self,
        mvs: &[MvDefinition],
        plan: &Plan,
        edges: &[(usize, usize)],
        snapshot: Option<&HashMap<String, TableDelta>>,
        poisoned: bool,
    ) -> DeltaPlan {
        let n = mvs.len();
        let mut dp = DeltaPlan::full(plan, n);
        for (i, mv) in mvs.iter().enumerate() {
            dp.pre_segments[i] = self.disk.segment_count(&mv.name).unwrap_or(0);
        }
        let index: HashMap<&str, usize> = mvs
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.as_str(), i))
            .collect();
        let pending = match snapshot {
            Some(p) if self.refresh.refresh_mode != RefreshMode::AlwaysFull => p,
            _ => return dp,
        };
        if pending.values().all(|d| d.is_empty()) {
            // An empty log is "no delta tracking", not "skip everything":
            // the run recomputes every MV exactly as before the log
            // existed (so profiling runs stay meaningful), while the
            // snapshot machinery stays active — a batch ingested *during*
            // this run is detected as contamination and poisons the log
            // instead of being double-applied next refresh.
            return dp;
        }
        // Estimated propagated delta bytes and delete-presence, per node.
        let mut est_delta = vec![0u64; n];
        let mut has_deletes = vec![false; n];
        for &node in &plan.order {
            let idx = node.index();
            let mv = &mvs[idx];
            if !self.disk.contains(&mv.name) {
                // First materialization is necessarily full.
                dp.reasons[idx] = ModeReason::FirstMaterialization;
                continue;
            }
            let support = mv.plan.incremental_support();
            let statics = support.static_tables();
            let mut known = true;
            let mut nonempty = false;
            let mut deletes = false;
            // A changed join build side cannot be delta-joined (its new
            // pairs would interleave into existing match groups): the node
            // must recompute, even though every input delta is known.
            let mut static_churn = false;
            let mut delta_bytes = 0u64;
            let mut input_bytes = 0u64;
            let mut static_bytes = 0u64;
            for input in mv.plan.input_tables() {
                let size = self.disk.size_of(&input).unwrap_or(0);
                input_bytes += size;
                let is_static = statics.contains(&input);
                if is_static {
                    static_bytes += size;
                }
                if let Some(&p) = index.get(input.as_str()) {
                    match dp.modes[p] {
                        NodeMode::Skipped => {}
                        NodeMode::Incremental if dp.publishes[p] && !is_static => {
                            delta_bytes += est_delta[p];
                            deletes |= has_deletes[p];
                            nonempty = true;
                            // The parent maintains incrementally, so by the
                            // time this node runs its stored contents have
                            // *grown* by the applied delta — the full path
                            // would re-read the post-update size, not the
                            // pre-run one `size_of` just returned. Pricing
                            // the stale size understates the full path and
                            // can flip a child's Auto decision to Full.
                            input_bytes += est_delta[p];
                        }
                        _ => {
                            known = false;
                            break;
                        }
                    }
                } else if let Some(d) = pending.get(&input) {
                    if !d.is_empty() {
                        if is_static {
                            static_churn = true;
                        } else {
                            delta_bytes += d.byte_size();
                            deletes |= d.has_deletes();
                        }
                        nonempty = true;
                    }
                }
            }
            if !known {
                dp.reasons[idx] = ModeReason::ParentRecomputed;
                continue;
            }
            if !nonempty {
                // Nothing reached the node: skipping is safe even after a
                // failed run (its contents were never touched).
                dp.modes[idx] = NodeMode::Skipped;
                dp.reasons[idx] = ModeReason::NoChurn;
                continue;
            }
            if poisoned {
                // A failed earlier run may have baked these deltas into
                // this MV already; only a full recompute is idempotent.
                dp.reasons[idx] = ModeReason::PoisonedLog;
                continue;
            }
            if static_churn {
                dp.reasons[idx] = ModeReason::StaticChurn;
                continue;
            }
            if !support.maintainable(deletes) {
                dp.reasons[idx] = ModeReason::UnsupportedShape;
                continue;
            }
            let mv_bytes = self.disk.size_of(&mv.name).unwrap_or(0);
            // Runtime feedback: summaries from past runs of this exact
            // node identity (name + plan-shape fingerprint) refine both
            // the output-delta estimate and the Auto cost comparison.
            let observed = self
                .observations
                .filter(|_| self.refresh.refresh_mode == RefreshMode::Auto)
                .and_then(|o| o.summary(&mv.name, mv.plan.fingerprint()));
            // Estimate the node's *output* delta. Best source: the
            // observed output/input delta ratio from past incremental
            // runs of this shape. Otherwise, a join fans the spine delta
            // out against its build sides (non-empty `static_bytes`
            // implies a join on the spine): estimate with the stored
            // per-byte amplification — output over spine input — so both
            // this node's append write term and downstream Auto
            // decisions are costed at the right magnitude instead of the
            // pre-join size.
            let est_out = if let Some(ratio) = observed.as_ref().and_then(|o| o.output_delta_ratio)
            {
                (delta_bytes as f64 * ratio).max(1.0) as u64
            } else if static_bytes > 0 {
                let spine_bytes = (input_bytes - static_bytes).max(1);
                let ratio = mv_bytes as f64 / spine_bytes as f64;
                (delta_bytes as f64 * ratio.max(1.0)) as u64
            } else {
                delta_bytes
            };
            let incremental = match self.refresh.refresh_mode {
                RefreshMode::AlwaysIncremental => true,
                // The append hint is optimistic about flag placement (a
                // flagged full-payload node later falls back to the
                // rewrite path), but deletes and shape are exact, and
                // the append is priced at the amplified output delta it
                // would actually persist.
                RefreshMode::Auto => {
                    dp.cost[idx] = if observed.is_some() {
                        CostProvenance::Observed
                    } else {
                        CostProvenance::Estimated
                    };
                    self.config.cost_model.incremental_refresh_wins_observed(
                        input_bytes,
                        mv_bytes,
                        delta_bytes,
                        static_bytes,
                        (support.publishes_delta() && !deletes).then_some(est_out),
                        observed.as_ref(),
                    )
                }
                RefreshMode::AlwaysFull => unreachable!("checked above"),
            };
            if incremental {
                dp.modes[idx] = NodeMode::Incremental;
                dp.reasons[idx] = ModeReason::DeltaApplied;
                dp.publishes[idx] = support.publishes_delta();
                est_delta[idx] = est_out;
                has_deletes[idx] = deletes;
            } else {
                // Only Auto can say no here: the cost model lost.
                dp.reasons[idx] = ModeReason::CostModel;
            }
        }

        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(i, j) in edges {
            children[i].push(j);
        }
        dp.flagged = (0..n)
            .map(|i| plan.flagged.contains(NodeId(i)) && dp.modes[i] != NodeMode::Skipped)
            .collect();
        for (i, kids) in children.iter().enumerate() {
            let inc_children = kids
                .iter()
                .filter(|&&c| dp.modes[c] == NodeMode::Incremental)
                .count();
            dp.delta_payload[i] = dp.flagged.contains(NodeId(i))
                && dp.publishes[i]
                && !kids.is_empty()
                && inc_children == kids.len();
            dp.spill[i] = dp.publishes[i] && inc_children > 0 && !dp.delta_payload[i];
        }
        for i in 0..n {
            // Append-path persistence: the node's insert-only output delta
            // lands as a new segment and the full output is never
            // materialized — which requires that no consumer expects the
            // full table in the Memory Catalog (a flagged node with a
            // recomputing child keeps the rewrite path).
            dp.append[i] = dp.modes[i] == NodeMode::Incremental
                && dp.publishes[i]
                && !has_deletes[i]
                && !(dp.flagged.contains(NodeId(i))
                    && !children[i].is_empty()
                    && !dp.delta_payload[i]);
        }
        dp
    }

    /// Performs the refresh run described by `plan` over `mvs`.
    pub fn refresh(&self, mvs: &[MvDefinition], plan: &Plan) -> Result<RunMetrics> {
        let edges = self.validate(mvs, plan)?;
        let gc_debt_before = self.disk.gc_failed_deletes();
        // Work from a point-in-time snapshot of the delta log: every node
        // sees the same pending batches even if ingestion continues while
        // the run executes, and only the snapshotted prefix is consumed.
        let snapshot = self.deltas.map(|s| s.snapshot());
        let poisoned = self.deltas.map(|s| s.is_poisoned()).unwrap_or(false);
        let dp = self.plan_deltas(mvs, plan, &edges, snapshot.as_ref(), poisoned);
        let mut result = if self.refresh.lanes <= 1 {
            self.refresh_sequential(mvs, plan, &edges, &dp, snapshot.as_ref())
        } else {
            self.refresh_parallel(mvs, plan, &edges, &dp, snapshot.as_ref())
        };
        if result.is_err() {
            // A failed run must not leave admitted entries behind: they
            // would shrink the budget for — and collide with — every
            // subsequent refresh on this catalog pair.
            for mv in mvs {
                self.memory.remove(&mv.name);
                self.memory.remove(&delta_entry_name(&mv.name));
            }
        }
        // Spilled delta files are transient, scoped to this run: a stale
        // one would be mistaken for a parent delta by the next refresh.
        for (i, mv) in mvs.iter().enumerate() {
            if dp.publishes[i] {
                let _ = self.disk.drop_table(&delta_entry_name(&mv.name));
            }
        }
        if let Ok(run) = &mut result {
            run.gc_failed_deletes = self.disk.gc_failed_deletes() - gc_debt_before;
        }
        if let Some(store) = self.deltas {
            match (&result, &snapshot) {
                // Every MV is now current: retire the consumed prefix. But
                // executions read *live* bases — a batch ingested after the
                // snapshot may already be baked into an MV this run
                // recomputed in full (or probed through a delta-join's
                // build side), and it still pends; applying it again next
                // run would double-count it, so poison the log and let the
                // next run recompute the delta-reached MVs instead.
                (Ok(_), Some(snap)) => {
                    let contaminated = self.concurrent_ingest_contaminates(mvs, &dp, snap, store);
                    store.consume(snap);
                    if contaminated {
                        store.mark_poisoned();
                    }
                }
                // Some MVs may already hold applied deltas while the log
                // still pends: force full recomputes until it drains. A
                // failed run is also conservatively poisoned when batches
                // arrived mid-run (unknown which nodes executed first).
                (Err(_), Some(snap))
                    if snap.values().any(|d| !d.is_empty())
                        || store
                            .tables()
                            .iter()
                            .any(|t| store.pending_batches(t) > snapshot_batches(snap, t)) =>
                {
                    store.mark_poisoned()
                }
                _ => {}
            }
        }
        // Feedback commit point: only a run that reached here with Ok —
        // catalogs written, delta log consumed — may teach the adaptive
        // layer. A doomed run (or the poisoned-log retry recomputing
        // after one) records nothing, so the sidecar stays byte-identical
        // to a never-failed history.
        if let (Ok(run), Some(obs)) = (&result, self.observations) {
            self.record_observations(mvs, run, obs);
        }
        result
    }

    /// Appends the run's *representative* node metrics to the observation
    /// store. Non-representative nodes are excluded: skipped nodes did no
    /// work, fallen-back flagged nodes paid an unplanned blocking write,
    /// and full recomputes forced by a poisoned log or an unsupported
    /// delta shape say nothing about how the node behaves when the
    /// planner actually gets to choose.
    fn record_observations(&self, mvs: &[MvDefinition], run: &RunMetrics, obs: &ObservationStore) {
        let fingerprints: HashMap<&str, u64> = mvs
            .iter()
            .map(|m| (m.name.as_str(), m.plan.fingerprint()))
            .collect();
        for node in &run.nodes {
            if node.mode == NodeMode::Skipped
                || node.fell_back
                || matches!(
                    node.reason,
                    ModeReason::PoisonedLog | ModeReason::UnsupportedShape
                )
            {
                continue;
            }
            let Some(&fp) = fingerprints.get(node.name.as_str()) else {
                continue;
            };
            obs.record(
                &node.name,
                fp,
                Observation {
                    full: node.mode == NodeMode::Full,
                    rows: node.rows as u64,
                    delta_bytes: node.delta_bytes,
                    appended_bytes: node.appended_bytes,
                    output_bytes: node.output_bytes,
                    read_s: node.read_s,
                    compute_s: node.compute_s,
                    write_s: node.write_s,
                },
            );
        }
    }

    /// Whether a batch ingested *during* the run (after its snapshot)
    /// could already be baked into an MV this run wrote: nodes executed
    /// in full read every input from live storage, and delta-joined nodes
    /// read their static build-side tables from live storage. (Skipped
    /// nodes read nothing; other incremental reads come from the
    /// snapshot, published parent deltas, or the node's own stored
    /// contents — none of which a concurrent ingest touches.)
    fn concurrent_ingest_contaminates(
        &self,
        mvs: &[MvDefinition],
        dp: &DeltaPlan,
        snapshot: &HashMap<String, TableDelta>,
        store: &DeltaStore,
    ) -> bool {
        let grown: Vec<String> = store
            .tables()
            .into_iter()
            .filter(|t| store.pending_batches(t) > snapshot_batches(snapshot, t))
            .collect();
        if grown.is_empty() {
            return false;
        }
        mvs.iter().enumerate().any(|(i, mv)| match dp.modes[i] {
            NodeMode::Full => mv.plan.input_tables().iter().any(|t| grown.contains(t)),
            NodeMode::Incremental => mv
                .plan
                .incremental_support()
                .static_tables()
                .iter()
                .any(|t| grown.contains(t)),
            NodeMode::Skipped => false,
        })
    }

    /// Output metrics for one computed node: the in-memory output size —
    /// or, on the append path (where the full output is never
    /// materialized), the stored size after the append commits: the
    /// pre-run stored size plus the encoded segment. Called at compute
    /// time, before the node's own write, so the pre-run manifest is
    /// still current.
    fn stored_output_metrics(&self, name: &str, output: &Table, append: bool) -> (u64, usize, u64) {
        if !append {
            return (output.byte_size(), output.num_rows(), 0);
        }
        let pre_bytes = self.disk.size_of(name).unwrap_or(0);
        let pre_rows = self.disk.row_count(name).unwrap_or(0) as usize;
        if output.num_rows() == 0 {
            return (pre_bytes, pre_rows, 0);
        }
        let seg_bytes = crate::storage::format::encoded_size(output);
        (
            pre_bytes + seg_bytes,
            pre_rows + output.num_rows(),
            seg_bytes,
        )
    }

    /// The paper's controller: one compute lane walking `plan.order`, plus
    /// the background materializer thread for flagged nodes.
    fn refresh_sequential(
        &self,
        mvs: &[MvDefinition],
        plan: &Plan,
        edges: &[(usize, usize)],
        dp: &DeltaPlan,
        snapshot: Option<&HashMap<String, TableDelta>>,
    ) -> Result<RunMetrics> {
        let n = mvs.len();
        let index: HashMap<&str, usize> = mvs
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.as_str(), i))
            .collect();

        // Remaining-consumer counts for release bookkeeping.
        let mut remaining_children = vec![0usize; n];
        for &(i, _) in edges {
            remaining_children[i] += 1;
        }
        let has_children: Vec<bool> = remaining_children.iter().map(|&c| c > 0).collect();

        self.memory.reset_peak();
        let run_started = Instant::now();

        let mut metrics_nodes: Vec<NodeMetrics> = Vec::with_capacity(n);
        let mut final_drain_s = 0.0f64;

        // Background materializer: receives (node index, name, table,
        // append?), persists it, reports completion.
        let (work_tx, work_rx) = mpsc::channel::<(usize, String, Arc<Table>, bool)>();
        let (done_tx, done_rx) = mpsc::channel::<(usize, Result<u64>)>();

        std::thread::scope(|scope| -> Result<()> {
            let disk = self.disk;
            scope.spawn(move || {
                for (idx, name, table, append) in work_rx {
                    let result = disk.persist_table(&name, &table, append);
                    // The run ends before the channel closes, so a send
                    // failure can only happen on early abort; ignore it.
                    let _ = done_tx.send((idx, result));
                }
            });

            // Release state per node: children pending + write pending.
            let mut write_pending = vec![false; n];
            let mut resident = vec![false; n];
            // Catalog entry held per resident node (a delta-payload node's
            // entry is its published delta, not its table).
            let mut catalog_names: Vec<String> = mvs.iter().map(|m| m.name.clone()).collect();

            let process_done = |timeout: Option<std::time::Duration>,
                                write_pending: &mut Vec<bool>,
                                mvs: &[MvDefinition]|
             -> Result<bool> {
                let msg = match timeout {
                    None => match done_rx.try_recv() {
                        Ok(m) => m,
                        Err(_) => return Ok(false),
                    },
                    Some(t) => match done_rx.recv_timeout(t) {
                        Ok(m) => m,
                        Err(_) => return Ok(false),
                    },
                };
                let (idx, result) = msg;
                result.map_err(|e| EngineError::Materialize(format!("{}: {e}", mvs[idx].name)))?;
                write_pending[idx] = false;
                Ok(true)
            };

            // The executed node consumed its parents: release every entry
            // whose consumers have now all run (§III-C).
            let release_parents = |idx: usize,
                                   remaining_children: &mut Vec<usize>,
                                   resident: &mut Vec<bool>,
                                   catalog_names: &[String]| {
                for &(i, j) in edges {
                    if j == idx {
                        remaining_children[i] -= 1;
                        if remaining_children[i] == 0 && resident[i] {
                            self.memory.remove(&catalog_names[i]);
                            resident[i] = false;
                        }
                    }
                }
            };

            for &node in &plan.order {
                let idx = node.index();
                let mv = &mvs[idx];

                if dp.modes[idx] == NodeMode::Skipped {
                    // Nothing reaches this MV: its stored contents are
                    // already current. It still counts as an executed
                    // consumer for release bookkeeping below.
                    let mut skipped = NodeMetrics::skipped(&mv.name);
                    skipped.segments = dp.pre_segments[idx];
                    metrics_nodes.push(skipped);
                    release_parents(idx, &mut remaining_children, &mut resident, &catalog_names);
                    while process_done(None, &mut write_pending, mvs)? {}
                    continue;
                }

                let source = RunSource::new(self.memory, self.disk);
                let node_started = Instant::now();
                let (output, delta, delta_bytes) = if dp.modes[idx] == NodeMode::Incremental {
                    let deltas = RunDeltaSource {
                        pending: snapshot,
                        index: &index,
                        source: &source,
                    };
                    let inc = execute_incremental(mv, &source, &deltas, dp.append[idx])?;
                    (Arc::new(inc.output), inc.delta, inc.delta_bytes)
                } else {
                    (Arc::new(mv.plan.execute(&source)?), None, 0)
                };
                let exec_elapsed = node_started.elapsed().as_secs_f64();
                let read_s = source.read_s.get();
                let compute_s = (exec_elapsed - read_s).max(0.0);
                let is_append = dp.append[idx];
                let (output_bytes, rows, appended_bytes) =
                    self.stored_output_metrics(&mv.name, &output, is_append);
                let segments = if is_append {
                    dp.pre_segments[idx] + usize::from(appended_bytes > 0)
                } else {
                    1
                };

                // Encode the published delta once for spill and/or catalog.
                let delta_table: Option<Arc<Table>> = match &delta {
                    Some(d) if dp.spill[idx] || dp.delta_payload[idx] => {
                        Some(Arc::new(d.to_table()?))
                    }
                    _ => None,
                };
                let is_flagged = dp.flagged.contains(NodeId(idx));
                let mut write_s = 0.0;
                let mut fell_back = false;

                if dp.spill[idx] {
                    let w = Instant::now();
                    self.disk.write_table(
                        &delta_entry_name(&mv.name),
                        delta_table.as_ref().expect("spill implies published delta"),
                    )?;
                    write_s += w.elapsed().as_secs_f64();
                }

                if is_flagged && !has_children[idx] {
                    // No consumers: skip the catalog (it is outside every
                    // Vi), just background the write.
                    write_pending[idx] = true;
                    work_tx
                        .send((idx, mv.name.clone(), output, is_append))
                        .map_err(|e| EngineError::Materialize(e.to_string()))?;
                } else if is_flagged {
                    let (entry_name, payload) = if dp.delta_payload[idx] {
                        (
                            delta_entry_name(&mv.name),
                            Arc::clone(delta_table.as_ref().expect("delta payload published")),
                        )
                    } else {
                        (mv.name.clone(), Arc::clone(&output))
                    };
                    match self.memory.insert(&entry_name, payload) {
                        Ok(()) => {
                            resident[idx] = true;
                            catalog_names[idx] = entry_name;
                            write_pending[idx] = true;
                            work_tx
                                .send((idx, mv.name.clone(), output, is_append))
                                .map_err(|e| EngineError::Materialize(e.to_string()))?;
                        }
                        Err(EngineError::MemoryBudgetExceeded { .. })
                            if self.config.fallback_on_memory_pressure =>
                        {
                            fell_back = true;
                            let w = Instant::now();
                            if dp.delta_payload[idx] {
                                // Incremental consumers now read the delta
                                // from storage instead of the catalog.
                                self.disk.write_table(
                                    &delta_entry_name(&mv.name),
                                    delta_table.as_ref().expect("delta payload published"),
                                )?;
                            }
                            self.disk.persist_table(&mv.name, &output, is_append)?;
                            write_s += w.elapsed().as_secs_f64();
                        }
                        Err(e) => return Err(e),
                    }
                } else {
                    let w = Instant::now();
                    self.disk.persist_table(&mv.name, &output, is_append)?;
                    write_s += w.elapsed().as_secs_f64();
                }

                metrics_nodes.push(NodeMetrics {
                    name: mv.name.clone(),
                    mode: dp.modes[idx],
                    reason: dp.reasons[idx],
                    delta_bytes,
                    appended_bytes,
                    segments,
                    read_s,
                    compute_s,
                    write_s,
                    output_bytes,
                    rows,
                    flagged: is_flagged && !fell_back,
                    fell_back,
                    memory_reads: source.memory_reads.get(),
                    disk_reads: source.disk_reads.get(),
                    cost: dp.cost[idx],
                });

                // The materializer thread holds its own reference, so
                // releasing the catalog budget is safe even while the
                // background write is still in flight.
                release_parents(idx, &mut remaining_children, &mut resident, &catalog_names);

                // Opportunistically drain materializer completions.
                while process_done(None, &mut write_pending, mvs)? {}
            }

            // All nodes executed; wait for outstanding materializations.
            drop(work_tx);
            let drain_started = Instant::now();
            while write_pending.iter().any(|&p| p) {
                if !process_done(
                    Some(std::time::Duration::from_millis(50)),
                    &mut write_pending,
                    mvs,
                )? {
                    continue;
                }
            }
            final_drain_s = drain_started.elapsed().as_secs_f64();

            // Release any still-resident flagged nodes (all children done by
            // now — every node has executed).
            for (idx, r) in resident.iter().enumerate() {
                if *r {
                    self.memory.remove(&catalog_names[idx]);
                }
            }
            Ok(())
        })?;

        Ok(RunMetrics {
            total_s: run_started.elapsed().as_secs_f64(),
            nodes: metrics_nodes,
            peak_memory_bytes: self.memory.peak(),
            final_drain_s,
            gc_failed_deletes: 0,
        })
    }

    /// Computes one node for the multi-lane executor (worker-side): runs
    /// the node's plan — full or incremental per the fixed delta plan —
    /// and spills the published delta to storage when some incremental
    /// consumer must read it from there. Skipped nodes return an empty
    /// placeholder so the pool's readiness machinery stays uniform.
    fn compute_node(
        &self,
        mvs: &[MvDefinition],
        index: &HashMap<&str, usize>,
        dp: &DeltaPlan,
        snapshot: Option<&HashMap<String, TableDelta>>,
        idx: usize,
    ) -> Result<ComputedNode> {
        if dp.modes[idx] == NodeMode::Skipped {
            return Ok(ComputedNode {
                output: Arc::new(Table::empty(crate::schema::Schema::empty())),
                append: false,
                output_bytes: 0,
                rows: 0,
                appended_bytes: 0,
                delta_table: None,
                delta_bytes: 0,
                read_s: 0.0,
                compute_s: 0.0,
                spill_write_s: 0.0,
                memory_reads: 0,
                disk_reads: 0,
            });
        }
        let source = RunSource::new(self.memory, self.disk);
        let started = Instant::now();
        let (output, delta, delta_bytes) = if dp.modes[idx] == NodeMode::Incremental {
            let deltas = RunDeltaSource {
                pending: snapshot,
                index,
                source: &source,
            };
            let inc = execute_incremental(&mvs[idx], &source, &deltas, dp.append[idx])?;
            (Arc::new(inc.output), inc.delta, inc.delta_bytes)
        } else {
            (Arc::new(mvs[idx].plan.execute(&source)?), None, 0)
        };
        let elapsed = started.elapsed().as_secs_f64();
        let read_s = source.read_s.get();
        let delta_table = match &delta {
            Some(d) if dp.spill[idx] || dp.delta_payload[idx] => Some(Arc::new(d.to_table()?)),
            _ => None,
        };
        let mut spill_write_s = 0.0;
        if dp.spill[idx] {
            let w = Instant::now();
            self.disk.write_table(
                &delta_entry_name(&mvs[idx].name),
                delta_table.as_ref().expect("spill implies published delta"),
            )?;
            spill_write_s = w.elapsed().as_secs_f64();
        }
        let (output_bytes, rows, appended_bytes) =
            self.stored_output_metrics(&mvs[idx].name, &output, dp.append[idx]);
        Ok(ComputedNode {
            output,
            append: dp.append[idx],
            output_bytes,
            rows,
            appended_bytes,
            delta_table,
            delta_bytes,
            read_s,
            compute_s: (elapsed - read_s).max(0.0),
            spill_write_s,
            memory_reads: source.memory_reads.get(),
            disk_reads: source.disk_reads.get(),
        })
    }

    /// The multi-lane executor: a pool of worker threads executes DAG
    /// nodes as soon as all dependencies are readable, with flag admission
    /// serialized in `plan.order` (see the module docs for the invariants).
    ///
    /// Admission decisions are a *deterministic replay* of the sequential
    /// controller's Memory Catalog accounting: a flagged node's
    /// admit-or-fallback outcome is decided only once every node earlier in
    /// `plan.order` has computed, against a model of the catalog state the
    /// sequential run would have at that plan position. Actual catalog
    /// usage at that moment is never above the model's (out-of-order
    /// completions can only add releases), so a modeled admit always fits
    /// — parallel runs reproduce the sequential run's flag outcomes
    /// exactly, independent of thread timing.
    ///
    /// Run-ahead is bounded: a node only starts once all nodes more than
    /// `window` plan positions ahead of it have computed, which caps the
    /// number of computed-but-unpublished outputs held outside the
    /// catalog's accounting.
    fn refresh_parallel(
        &self,
        mvs: &[MvDefinition],
        plan: &Plan,
        edges: &[(usize, usize)],
        dp: &DeltaPlan,
        snapshot: Option<&HashMap<String, TableDelta>>,
    ) -> Result<RunMetrics> {
        let n = mvs.len();
        let lanes = self.refresh.lanes.min(n.max(1));
        // Transient (out-of-catalog) outputs are bounded by roughly this
        // many nodes beyond the computed plan-order prefix.
        let window = self
            .refresh
            .run_ahead_window
            .unwrap_or_else(|| sc_core::run_ahead_window(lanes));
        let index: HashMap<&str, usize> = mvs
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.as_str(), i))
            .collect();
        // The executor works against the *effective* flags (skipped nodes
        // never enter the catalog), in a plan the shared admission replayer
        // can consume.
        let eff_plan = Plan {
            order: plan.order.clone(),
            flagged: dp.flagged.clone(),
        };
        let plan = &eff_plan;

        let mut remaining_children = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pending_parents = vec![0usize; n];
        for &(i, j) in edges {
            remaining_children[i] += 1;
            children[i].push(j);
            parents[j].push(i);
            pending_parents[j] += 1;
        }
        let has_children: Vec<bool> = remaining_children.iter().map(|&c| c > 0).collect();
        let mut pos = vec![0usize; n];
        for (p, &v) in plan.order.iter().enumerate() {
            pos[v.index()] = p;
        }

        // Flagged nodes with consumers enter the Memory Catalog strictly in
        // plan order; this queue is that order.
        let admission_order: Vec<usize> = plan
            .order
            .iter()
            .map(|v| v.index())
            .filter(|&i| plan.flagged.contains(NodeId(i)) && has_children[i])
            .collect();

        self.memory.reset_peak();
        let run_started = Instant::now();

        let mut metrics: Vec<Option<NodeMetrics>> = (0..n).map(|_| None).collect();
        let mut final_drain_s = 0.0f64;

        std::thread::scope(|scope| -> Result<()> {
            // All channels live inside the scope so an early error return
            // drops the senders, which terminates workers and the
            // materializer before the scope joins them.
            let (task_tx, task_rx) = mpsc::channel::<LaneTask>();
            let task_rx = Arc::new(Mutex::new(task_rx));
            let (msg_tx, msg_rx) = mpsc::channel::<LaneMsg>();
            let (bg_tx, bg_rx) = mpsc::channel::<(usize, String, Arc<Table>, bool)>();

            {
                let msg_tx = msg_tx.clone();
                let disk = self.disk;
                scope.spawn(move || {
                    for (idx, name, table, append) in bg_rx {
                        let result = disk.persist_table(&name, &table, append);
                        let _ = msg_tx.send(LaneMsg::BgWritten { idx, result });
                    }
                });
            }

            for _ in 0..lanes {
                let task_rx = Arc::clone(&task_rx);
                let msg_tx = msg_tx.clone();
                let index = &index;
                scope.spawn(move || loop {
                    // Workers race for the receiver; holding the lock while
                    // blocked in recv is fine — the holder is handed the
                    // next task and releases immediately.
                    let task = match task_rx.lock().unwrap_or_else(|p| p.into_inner()).recv() {
                        Ok(t) => t,
                        Err(_) => break,
                    };
                    let send = match task {
                        LaneTask::Compute(idx) => {
                            match self.compute_node(mvs, index, dp, snapshot, idx) {
                                Ok(node) => LaneMsg::Computed { idx, node },
                                Err(error) => LaneMsg::ComputeFailed { error },
                            }
                        }
                        LaneTask::Write {
                            idx,
                            output,
                            spill,
                            fell_back,
                            append,
                        } => {
                            let w = Instant::now();
                            let result = spill
                                .map(|d| {
                                    self.disk
                                        .write_table(&delta_entry_name(&mvs[idx].name), &d)
                                        .map(|_| ())
                                })
                                .unwrap_or(Ok(()))
                                .and_then(|()| {
                                    self.disk.persist_table(&mvs[idx].name, &output, append)
                                });
                            LaneMsg::Written {
                                idx,
                                write_s: w.elapsed().as_secs_f64(),
                                fell_back,
                                result,
                            }
                        }
                    };
                    // A send failure means the coordinator aborted; exit.
                    if msg_tx.send(send).is_err() {
                        break;
                    }
                });
            }
            // The coordinator only receives; drop its sender so msg_rx can
            // disconnect if every thread exits unexpectedly.
            drop(msg_tx);

            let mut resident = vec![false; n];
            let mut catalog_names: Vec<String> = mvs.iter().map(|m| m.name.clone()).collect();
            let mut bg_pending = vec![false; n];
            let mut next_admit = 0usize;
            let mut awaiting_admission: HashMap<usize, ComputedNode> = HashMap::new();
            let mut finalized = 0usize;

            // Computed plan-order prefix + the sequential-accounting
            // replay it drives (see the function docs). The replayer is
            // shared with the simulator via sc-core so the two executors
            // cannot drift apart.
            let mut computed = vec![false; n];
            let mut sizes = vec![0u64; n];
            let mut replay = sc_core::AdmissionReplay::new(plan, &parents, self.memory.budget());
            // Ready nodes held back by the run-ahead window, keyed by plan
            // position.
            let mut held: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();

            let publish = |idx: usize,
                           pending_parents: &mut Vec<usize>,
                           held: &mut std::collections::BTreeSet<usize>,
                           prefix: usize,
                           task_tx: &mpsc::Sender<LaneTask>|
             -> Result<()> {
                for &j in &children[idx] {
                    pending_parents[j] -= 1;
                    if pending_parents[j] == 0 {
                        if pos[j] <= prefix + window {
                            task_tx
                                .send(LaneTask::Compute(j))
                                .map_err(|e| EngineError::Materialize(e.to_string()))?;
                        } else {
                            held.insert(pos[j]);
                        }
                    }
                }
                Ok(())
            };

            // Seed the pool with every dependency-free node within the
            // initial window, in plan order.
            for &v in &plan.order {
                if pending_parents[v.index()] == 0 {
                    if pos[v.index()] <= window {
                        task_tx
                            .send(LaneTask::Compute(v.index()))
                            .map_err(|e| EngineError::Materialize(e.to_string()))?;
                    } else {
                        held.insert(pos[v.index()]);
                    }
                }
            }

            let mut drain_started: Option<Instant> = None;
            while finalized < n || bg_pending.iter().any(|&b| b) {
                if finalized == n && drain_started.is_none() {
                    drain_started = Some(Instant::now());
                }
                let msg = msg_rx
                    .recv()
                    .map_err(|_| EngineError::Materialize("worker pool died".to_string()))?;
                match msg {
                    LaneMsg::ComputeFailed { error } => return Err(error),
                    LaneMsg::Computed { idx, node } => {
                        computed[idx] = true;
                        // Catalog accounting sees the node's payload: its
                        // delta when every consumer maintains
                        // incrementally, its full output otherwise.
                        sizes[idx] = if dp.delta_payload[idx] {
                            node.delta_table
                                .as_ref()
                                .map(|d| d.byte_size())
                                .unwrap_or(0)
                        } else {
                            node.output.byte_size()
                        };
                        // This node consumed its parents: release any whose
                        // consumers have now all executed.
                        for &i in &parents[idx] {
                            remaining_children[i] -= 1;
                            if remaining_children[i] == 0 && resident[i] {
                                self.memory.remove(&catalog_names[i]);
                                resident[i] = false;
                            }
                        }
                        let is_flagged = plan.flagged.contains(NodeId(idx));
                        if dp.modes[idx] == NodeMode::Skipped {
                            // Stored contents already current: nothing to
                            // write or admit, publish immediately.
                            let mut skipped = NodeMetrics::skipped(&mvs[idx].name);
                            skipped.segments = dp.pre_segments[idx];
                            metrics[idx] = Some(skipped);
                            finalized += 1;
                            publish(
                                idx,
                                &mut pending_parents,
                                &mut held,
                                replay.prefix(),
                                &task_tx,
                            )?;
                        } else if is_flagged && !has_children[idx] {
                            // No consumers: bypass the catalog, background
                            // the write, and publish immediately.
                            bg_pending[idx] = true;
                            bg_tx
                                .send((
                                    idx,
                                    mvs[idx].name.clone(),
                                    Arc::clone(&node.output),
                                    node.append,
                                ))
                                .map_err(|e| EngineError::Materialize(e.to_string()))?;
                            metrics[idx] = Some(node_metrics(
                                &mvs[idx].name,
                                &node,
                                dp,
                                idx,
                                0.0,
                                true,
                                false,
                            ));
                            finalized += 1;
                            publish(
                                idx,
                                &mut pending_parents,
                                &mut held,
                                replay.prefix(),
                                &task_tx,
                            )?;
                        } else if is_flagged {
                            awaiting_admission.insert(idx, node);
                        } else {
                            let output = Arc::clone(&node.output);
                            let append = node.append;
                            awaiting_admission.insert(idx, node);
                            task_tx
                                .send(LaneTask::Write {
                                    idx,
                                    output,
                                    spill: None,
                                    fell_back: false,
                                    append,
                                })
                                .map_err(|e| EngineError::Materialize(e.to_string()))?;
                        }

                        // Advance the sequential-accounting replay over the
                        // computed prefix, fixing admit/fallback decisions
                        // exactly as the 1-lane run would.
                        replay.advance(plan, &parents, &computed, &sizes);

                        // Execute decided admissions, in plan order.
                        while next_admit < admission_order.len() {
                            let cand = admission_order[next_admit];
                            let Some(admit) = replay.decision(cand) else {
                                break;
                            };
                            if !admit && !self.config.fallback_on_memory_pressure {
                                return Err(EngineError::MemoryBudgetExceeded {
                                    requested: sizes[cand],
                                    used: replay.used(),
                                    budget: self.memory.budget(),
                                });
                            }
                            let pending = awaiting_admission
                                .remove(&cand)
                                .expect("decision only fixes after the node computed");
                            if admit {
                                // Cannot exceed the budget: actual usage is
                                // never above the model's at this point
                                // (out-of-order completions only add
                                // releases).
                                let (entry_name, payload) = if dp.delta_payload[cand] {
                                    (
                                        delta_entry_name(&mvs[cand].name),
                                        Arc::clone(
                                            pending
                                                .delta_table
                                                .as_ref()
                                                .expect("delta payload published"),
                                        ),
                                    )
                                } else {
                                    (mvs[cand].name.clone(), Arc::clone(&pending.output))
                                };
                                self.memory.insert(&entry_name, payload)?;
                                catalog_names[cand] = entry_name;
                                resident[cand] = true;
                                bg_pending[cand] = true;
                                bg_tx
                                    .send((
                                        cand,
                                        mvs[cand].name.clone(),
                                        Arc::clone(&pending.output),
                                        pending.append,
                                    ))
                                    .map_err(|e| EngineError::Materialize(e.to_string()))?;
                                metrics[cand] = Some(node_metrics(
                                    &mvs[cand].name,
                                    &pending,
                                    dp,
                                    cand,
                                    0.0,
                                    true,
                                    false,
                                ));
                                finalized += 1;
                                publish(
                                    cand,
                                    &mut pending_parents,
                                    &mut held,
                                    replay.prefix(),
                                    &task_tx,
                                )?;
                            } else {
                                let output = Arc::clone(&pending.output);
                                let append = pending.append;
                                // A fallen-back delta payload must reach
                                // storage for its incremental consumers.
                                let spill = if dp.delta_payload[cand] {
                                    pending.delta_table.clone()
                                } else {
                                    None
                                };
                                // The Written handler finalizes from the
                                // stash; put the entry back.
                                awaiting_admission.insert(cand, pending);
                                task_tx
                                    .send(LaneTask::Write {
                                        idx: cand,
                                        output,
                                        spill,
                                        fell_back: true,
                                        append,
                                    })
                                    .map_err(|e| EngineError::Materialize(e.to_string()))?;
                            }
                            next_admit += 1;
                        }

                        // The prefix advanced: release window-held nodes
                        // that now fall inside it.
                        while let Some(&p) = held.first() {
                            if p > replay.prefix() + window {
                                break;
                            }
                            held.remove(&p);
                            task_tx
                                .send(LaneTask::Compute(plan.order[p].index()))
                                .map_err(|e| EngineError::Materialize(e.to_string()))?;
                        }
                    }
                    LaneMsg::Written {
                        idx,
                        write_s,
                        fell_back,
                        result,
                    } => {
                        result?;
                        let pending = awaiting_admission
                            .remove(&idx)
                            .expect("blocking write for a node without a computed output");
                        metrics[idx] = Some(node_metrics(
                            &mvs[idx].name,
                            &pending,
                            dp,
                            idx,
                            write_s,
                            false,
                            fell_back,
                        ));
                        finalized += 1;
                        publish(
                            idx,
                            &mut pending_parents,
                            &mut held,
                            replay.prefix(),
                            &task_tx,
                        )?;
                    }
                    LaneMsg::BgWritten { idx, result } => {
                        result.map_err(|e| {
                            EngineError::Materialize(format!("{}: {e}", mvs[idx].name))
                        })?;
                        bg_pending[idx] = false;
                    }
                }
            }
            final_drain_s = drain_started
                .map(|d| d.elapsed().as_secs_f64())
                .unwrap_or(0.0);

            // Release any still-resident flagged nodes.
            for (idx, r) in resident.iter().enumerate() {
                if *r {
                    self.memory.remove(&catalog_names[idx]);
                }
            }
            Ok(())
        })?;

        let nodes = plan
            .order
            .iter()
            .map(|v| metrics[v.index()].take().expect("every node finalized"))
            .collect();
        Ok(RunMetrics {
            total_s: run_started.elapsed().as_secs_f64(),
            nodes,
            peak_memory_bytes: self.memory.peak(),
            final_drain_s,
            gc_failed_deletes: 0,
        })
    }
}

/// Assembles the final [`NodeMetrics`] for a computed node.
fn node_metrics(
    name: &str,
    node: &ComputedNode,
    dp: &DeltaPlan,
    idx: usize,
    write_s: f64,
    flagged: bool,
    fell_back: bool,
) -> NodeMetrics {
    NodeMetrics {
        name: name.to_string(),
        mode: dp.modes[idx],
        reason: dp.reasons[idx],
        delta_bytes: node.delta_bytes,
        appended_bytes: node.appended_bytes,
        segments: if node.append {
            dp.pre_segments[idx] + usize::from(node.appended_bytes > 0)
        } else {
            1
        },
        read_s: node.read_s,
        compute_s: node.compute_s,
        write_s: write_s + node.spill_write_s,
        output_bytes: node.output_bytes,
        rows: node.rows,
        flagged,
        fell_back,
        memory_reads: node.memory_reads,
        disk_reads: node.disk_reads,
        cost: dp.cost[idx],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::AggExpr;
    use crate::storage::Throttle;
    use crate::table::TableBuilder;
    use crate::types::{DataType, Value};
    use sc_core::FlagSet;

    /// Base table with `n` rows of (k, v).
    fn base_table(n: i64) -> Table {
        let mut t = TableBuilder::new()
            .column("k", DataType::Int64)
            .column("v", DataType::Float64)
            .build();
        for i in 0..n {
            t.push_row(vec![Value::Int64(i % 10), Value::Float64(i as f64)])
                .unwrap();
        }
        t
    }

    /// A 3-node workload like Figure 4: base -> mv1 -> {mv2, mv3}.
    fn fig4_workload() -> Vec<MvDefinition> {
        vec![
            MvDefinition::new(
                "mv1",
                LogicalPlan::scan("base").filter(Expr::col("v").ge(Expr::lit(10.0f64))),
            ),
            MvDefinition::new(
                "mv2",
                LogicalPlan::scan("mv1").aggregate(
                    vec!["k".into()],
                    vec![AggExpr::new(crate::exec::AggFunc::Sum, "v", "sum_v")],
                ),
            ),
            MvDefinition::new(
                "mv3",
                LogicalPlan::scan("mv1").filter(Expr::col("k").eq(Expr::lit(3i64))),
            ),
        ]
    }

    /// A wide workload: base -> {w1..w4} -> sink.
    fn wide_workload() -> Vec<MvDefinition> {
        let mut mvs: Vec<MvDefinition> = (0..4)
            .map(|i| {
                MvDefinition::new(
                    format!("w{i}"),
                    LogicalPlan::scan("base").filter(Expr::col("k").eq(Expr::lit(i as i64))),
                )
            })
            .collect();
        let union = LogicalPlan::scan("w0")
            .union(LogicalPlan::scan("w1"))
            .union(LogicalPlan::scan("w2"))
            .union(LogicalPlan::scan("w3"));
        mvs.push(MvDefinition::new("sink", union));
        mvs
    }

    fn setup(budget: u64) -> (tempfile::TempDir, DiskCatalog, MemoryCatalog) {
        let dir = tempfile::tempdir().unwrap();
        let disk = DiskCatalog::open(dir.path()).unwrap();
        disk.write_table("base", &base_table(500)).unwrap();
        let mem = MemoryCatalog::new(budget);
        (dir, disk, mem)
    }

    fn plan_for(mvs: &[MvDefinition], flagged: &[usize]) -> Plan {
        let order: Vec<NodeId> = (0..mvs.len()).map(NodeId).collect();
        Plan {
            order,
            flagged: FlagSet::from_nodes(mvs.len(), flagged.iter().map(|&i| NodeId(i))),
        }
    }

    #[test]
    fn unflagged_run_materializes_everything() {
        let (_dir, disk, mem) = setup(1 << 20);
        let mvs = fig4_workload();
        let plan = plan_for(&mvs, &[]);
        let metrics = Controller::new(&disk, &mem).refresh(&mvs, &plan).unwrap();
        assert_eq!(metrics.nodes.len(), 3);
        for mv in &mvs {
            assert!(disk.contains(&mv.name), "{} must be persisted", mv.name);
        }
        assert_eq!(metrics.peak_memory_bytes, 0);
        assert!(mem.is_empty());
        // Unflagged nodes pay blocking writes.
        assert!(metrics.nodes.iter().all(|n| n.write_s >= 0.0 && !n.flagged));
        // mv2/mv3 read mv1 from disk.
        assert!(metrics.nodes[1].disk_reads >= 1);
    }

    #[test]
    fn flagged_run_produces_identical_tables() {
        let (_dir1, disk1, mem1) = setup(1 << 20);
        let (_dir2, disk2, mem2) = setup(1 << 20);
        let mvs = fig4_workload();

        Controller::new(&disk1, &mem1)
            .refresh(&mvs, &plan_for(&mvs, &[]))
            .unwrap();
        Controller::new(&disk2, &mem2)
            .refresh(&mvs, &plan_for(&mvs, &[0]))
            .unwrap();

        for mv in &mvs {
            assert_eq!(
                disk1.read_table(&mv.name).unwrap(),
                disk2.read_table(&mv.name).unwrap(),
                "flagging must not change {}'s contents",
                mv.name
            );
        }
    }

    #[test]
    fn flagged_node_served_from_memory_and_released() {
        let (_dir, disk, mem) = setup(1 << 20);
        let mvs = fig4_workload();
        let plan = plan_for(&mvs, &[0]);
        let metrics = Controller::new(&disk, &mem).refresh(&mvs, &plan).unwrap();
        // mv1 flagged: no blocking write, consumers read from memory.
        assert!(metrics.nodes[0].flagged);
        assert_eq!(metrics.nodes[0].write_s, 0.0);
        assert_eq!(metrics.nodes[1].memory_reads, 1);
        assert_eq!(metrics.nodes[1].disk_reads, 0);
        assert_eq!(metrics.nodes[2].memory_reads, 1);
        // Released at the end; still persisted.
        assert!(mem.is_empty());
        assert!(disk.contains("mv1"));
        assert!(metrics.peak_memory_bytes > 0);
    }

    #[test]
    fn memory_pressure_falls_back_to_disk() {
        let (_dir, disk, mem) = setup(16); // comically small budget
        let mvs = fig4_workload();
        let plan = plan_for(&mvs, &[0]);
        let metrics = Controller::new(&disk, &mem).refresh(&mvs, &plan).unwrap();
        assert!(metrics.nodes[0].fell_back);
        assert!(!metrics.nodes[0].flagged);
        assert!(disk.contains("mv1"));
        // Consumers read from disk instead.
        assert_eq!(metrics.nodes[1].memory_reads, 0);
    }

    #[test]
    fn memory_pressure_without_fallback_errors() {
        let (_dir, disk, mem) = setup(16);
        let mvs = fig4_workload();
        let plan = plan_for(&mvs, &[0]);
        let controller = Controller::new(&disk, &mem).with_config(ControllerConfig {
            fallback_on_memory_pressure: false,
            ..ControllerConfig::default()
        });
        assert!(matches!(
            controller.refresh(&mvs, &plan),
            Err(EngineError::MemoryBudgetExceeded { .. })
        ));
    }

    #[test]
    fn rejects_invalid_plans() {
        let (_dir, disk, mem) = setup(1 << 20);
        let mvs = fig4_workload();
        let c = Controller::new(&disk, &mem);
        // Wrong length.
        let bad = Plan {
            order: vec![NodeId(0)],
            flagged: FlagSet::none(1),
        };
        assert!(matches!(
            c.refresh(&mvs, &bad),
            Err(EngineError::InvalidPlan(_))
        ));
        // Not a permutation.
        let bad = Plan {
            order: vec![NodeId(0), NodeId(0), NodeId(1)],
            flagged: FlagSet::none(3),
        };
        assert!(matches!(
            c.refresh(&mvs, &bad),
            Err(EngineError::InvalidPlan(_))
        ));
        // Dependency violation: mv2 before mv1.
        let bad = Plan {
            order: vec![NodeId(1), NodeId(0), NodeId(2)],
            flagged: FlagSet::none(3),
        };
        assert!(matches!(
            c.refresh(&mvs, &bad),
            Err(EngineError::InvalidPlan(_))
        ));
    }

    #[test]
    fn dependencies_derived_from_scans() {
        let mvs = fig4_workload();
        let deps = Controller::dependencies(&mvs);
        assert_eq!(deps, vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn missing_base_table_fails_cleanly() {
        let dir = tempfile::tempdir().unwrap();
        let disk = DiskCatalog::open(dir.path()).unwrap();
        let mem = MemoryCatalog::new(1 << 20);
        let mvs = fig4_workload();
        let plan = plan_for(&mvs, &[]);
        assert!(matches!(
            Controller::new(&disk, &mem).refresh(&mvs, &plan),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn failed_run_drains_catalog_and_allows_retry() {
        // mv1 is flagged and admitted, then mv_bad fails on a missing
        // table: the admitted entry must not leak — a leaked entry would
        // shrink the budget and make the retry's insert collide.
        let (_dir, disk, mem) = setup(1 << 20);
        let mut mvs = fig4_workload();
        mvs.push(MvDefinition::new(
            "mv_bad",
            LogicalPlan::scan("mv1").union(LogicalPlan::scan("no_such_table")),
        ));
        let bad_plan = plan_for(&mvs, &[0]);
        for lanes in [1usize, 4] {
            let c = Controller::new(&disk, &mem).with_lanes(lanes);
            assert!(matches!(
                c.refresh(&mvs, &bad_plan),
                Err(EngineError::UnknownTable(_))
            ));
            assert!(
                mem.is_empty(),
                "{lanes}-lane failed run must drain the catalog"
            );
        }
        // A valid workload on the same catalogs succeeds afterwards.
        let good = fig4_workload();
        let metrics = Controller::new(&disk, &mem)
            .refresh(&good, &plan_for(&good, &[0]))
            .unwrap();
        assert!(metrics.nodes[0].flagged);
        assert!(mem.is_empty());
    }

    #[test]
    fn throttled_flagged_run_is_faster_than_unflagged() {
        // With a slow disk, flagging mv1 must cut end-to-end time: its
        // write overlaps downstream compute and its two consumers skip
        // disk reads. This is Figure 1 in miniature.
        let dir = tempfile::tempdir().unwrap();
        let slow = Throttle {
            read_bps: 4e6,
            write_bps: 3e6,
            latency_s: 0.002,
        };
        let disk = DiskCatalog::open_throttled(dir.path(), slow).unwrap();
        disk.write_table("base", &base_table(4000)).unwrap();
        let mem = MemoryCatalog::new(1 << 22);
        let mvs = fig4_workload();

        let base = Controller::new(&disk, &mem)
            .refresh(&mvs, &plan_for(&mvs, &[]))
            .unwrap();
        let sc = Controller::new(&disk, &mem)
            .refresh(&mvs, &plan_for(&mvs, &[0]))
            .unwrap();
        assert!(
            sc.total_s < base.total_s,
            "S/C run ({:.3}s) must beat baseline ({:.3}s)",
            sc.total_s,
            base.total_s
        );
        assert!(mem.is_empty());
    }

    #[test]
    fn run_metrics_sums() {
        let (_dir, disk, mem) = setup(1 << 20);
        let mvs = fig4_workload();
        let m = Controller::new(&disk, &mem)
            .refresh(&mvs, &plan_for(&mvs, &[]))
            .unwrap();
        assert!(m.total_read_s() >= 0.0);
        assert!(m.total_compute_s() >= 0.0);
        assert!(m.total_write_s() >= 0.0);
        assert!(m.total_s >= m.total_write_s());
    }

    #[test]
    fn parallel_matches_sequential_outputs() {
        for flags in [vec![], vec![0usize]] {
            let (_dir1, disk1, mem1) = setup(1 << 20);
            let (_dir2, disk2, mem2) = setup(1 << 20);
            let mvs = fig4_workload();
            let plan = plan_for(&mvs, &flags);

            let seq = Controller::new(&disk1, &mem1).refresh(&mvs, &plan).unwrap();
            let par = Controller::new(&disk2, &mem2)
                .with_lanes(4)
                .refresh(&mvs, &plan)
                .unwrap();

            assert_eq!(seq.nodes.len(), par.nodes.len());
            for (a, b) in seq.nodes.iter().zip(&par.nodes) {
                assert_eq!(a.name, b.name, "metrics stay in plan order");
                assert_eq!(a.rows, b.rows);
                assert_eq!(a.output_bytes, b.output_bytes);
                assert_eq!(a.flagged, b.flagged);
            }
            for mv in &mvs {
                assert_eq!(
                    disk1.read_table(&mv.name).unwrap(),
                    disk2.read_table(&mv.name).unwrap(),
                    "parallel run must not change {}'s contents",
                    mv.name
                );
            }
            assert!(mem2.is_empty(), "parallel run must drain the catalog");
        }
    }

    #[test]
    fn parallel_wide_workload_all_flag_patterns() {
        for flags in [vec![], vec![0usize, 1, 2, 3], vec![0, 2]] {
            let (_dir, disk, mem) = setup(4 << 20);
            let mvs = wide_workload();
            let plan = plan_for(&mvs, &flags);
            let m = Controller::new(&disk, &mem)
                .with_lanes(3)
                .refresh(&mvs, &plan)
                .unwrap();
            assert_eq!(m.nodes.len(), 5);
            for mv in &mvs {
                assert!(disk.contains(&mv.name), "{} must be persisted", mv.name);
            }
            assert!(mem.is_empty());
            // The sink consumed every wi; row conservation holds.
            let sink = m.nodes.iter().find(|n| n.name == "sink").unwrap();
            let parts: usize = m
                .nodes
                .iter()
                .filter(|n| n.name.starts_with('w'))
                .map(|n| n.rows)
                .sum();
            assert_eq!(sink.rows, parts);
        }
    }

    #[test]
    fn parallel_respects_memory_pressure_fallback() {
        let (_dir, disk, mem) = setup(16);
        let mvs = fig4_workload();
        let plan = plan_for(&mvs, &[0]);
        let m = Controller::new(&disk, &mem)
            .with_lanes(2)
            .refresh(&mvs, &plan)
            .unwrap();
        assert!(m.nodes[0].fell_back);
        assert!(!m.nodes[0].flagged);
        assert!(disk.contains("mv1"));
        assert!(mem.is_empty());
    }

    #[test]
    fn parallel_rejects_invalid_plans_too() {
        let (_dir, disk, mem) = setup(1 << 20);
        let mvs = fig4_workload();
        let c = Controller::new(&disk, &mem).with_lanes(4);
        let bad = Plan {
            order: vec![NodeId(1), NodeId(0), NodeId(2)],
            flagged: FlagSet::none(3),
        };
        assert!(matches!(
            c.refresh(&mvs, &bad),
            Err(EngineError::InvalidPlan(_))
        ));
    }

    #[test]
    fn parallel_missing_base_table_fails_cleanly() {
        let dir = tempfile::tempdir().unwrap();
        let disk = DiskCatalog::open(dir.path()).unwrap();
        let mem = MemoryCatalog::new(1 << 20);
        let mvs = fig4_workload();
        let plan = plan_for(&mvs, &[]);
        assert!(matches!(
            Controller::new(&disk, &mem)
                .with_lanes(2)
                .refresh(&mvs, &plan),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn parallel_throttled_pipelines_reads_against_writes() {
        // Four independent full-copy MVs over a shared-device throttle:
        // the read channel and the write channel are separate resources,
        // so with lanes the write of MV i overlaps the read of MV i+1
        // (sequential pays read+write serially per node). This is the
        // lane win that survives an honest single-device bandwidth model —
        // and a single-CPU host, since it overlaps I/O pacing, not
        // compute. Expected ratio ≈ (4r + w) / (4r + 4w) ≈ 0.65.
        let dir = tempfile::tempdir().unwrap();
        let slow = Throttle {
            read_bps: 6e6,
            write_bps: 5e6,
            latency_s: 0.002,
        };
        let disk = DiskCatalog::open_throttled(dir.path(), slow).unwrap();
        disk.write_table("base", &base_table(4000)).unwrap();
        let mem = MemoryCatalog::new(1 << 22);
        let mvs: Vec<MvDefinition> = (0..4)
            .map(|i| {
                MvDefinition::new(
                    format!("copy{i}"),
                    LogicalPlan::scan("base").filter(Expr::col("v").ge(Expr::lit(i as f64))),
                )
            })
            .collect();
        let plan = plan_for(&mvs, &[]);

        let seq = Controller::new(&disk, &mem).refresh(&mvs, &plan).unwrap();
        let par = Controller::new(&disk, &mem)
            .with_lanes(4)
            .refresh(&mvs, &plan)
            .unwrap();
        assert!(
            par.total_s < seq.total_s * 0.8,
            "4 lanes ({:.3}s) must clearly beat 1 lane ({:.3}s)",
            par.total_s,
            seq.total_s
        );
    }

    #[test]
    fn parallel_admission_matches_sequential_under_tight_budget() {
        // Two flagged hubs whose outputs only fit one-at-a-time: the
        // sequential run admits P, releases it when C consumes it, then
        // admits X. A naive parallel executor would try to admit X while P
        // is still resident (C still running) and fall back; the model-
        // driven admission must reproduce the sequential outcome every
        // time, regardless of thread timing.
        let mvs = vec![
            MvDefinition::new(
                "hub_p",
                LogicalPlan::scan("base").filter(Expr::col("v").ge(Expr::lit(0.0f64))),
            ),
            MvDefinition::new(
                "consumer_c",
                LogicalPlan::scan("hub_p").aggregate(
                    vec!["k".into()],
                    vec![AggExpr::new(crate::exec::AggFunc::Sum, "v", "sum_v")],
                ),
            ),
            MvDefinition::new(
                "hub_x",
                LogicalPlan::scan("base").filter(Expr::col("v").ge(Expr::lit(1.0f64))),
            ),
            MvDefinition::new(
                "consumer_y",
                LogicalPlan::scan("hub_x").aggregate(
                    vec!["k".into()],
                    vec![AggExpr::new(crate::exec::AggFunc::Max, "v", "max_v")],
                ),
            ),
        ];
        let plan = plan_for(&mvs, &[0, 2]);

        // Measure hub_p's output size with a roomy budget first.
        let (_dir0, disk0, mem0) = setup(64 << 20);
        let probe = Controller::new(&disk0, &mem0).refresh(&mvs, &plan).unwrap();
        let hub_bytes = probe.nodes[0].output_bytes;
        let tight = hub_bytes + hub_bytes / 4; // fits one hub, not two

        let (_dir1, disk1, mem1) = setup(tight);
        let seq = Controller::new(&disk1, &mem1).refresh(&mvs, &plan).unwrap();
        assert!(
            seq.nodes[0].flagged && seq.nodes[2].flagged,
            "sequential admits both in turn"
        );

        for _ in 0..10 {
            let (_dir2, disk2, mem2) = setup(tight);
            let par = Controller::new(&disk2, &mem2)
                .with_lanes(4)
                .refresh(&mvs, &plan)
                .unwrap();
            for (a, b) in seq.nodes.iter().zip(&par.nodes) {
                assert_eq!(
                    a.flagged, b.flagged,
                    "{}: flag outcome must be deterministic",
                    a.name
                );
                assert_eq!(
                    a.fell_back, b.fell_back,
                    "{}: fallback must be deterministic",
                    a.name
                );
            }
            assert!(mem2.is_empty());
        }
    }

    #[test]
    fn refresh_config_defaults_and_clamping() {
        assert_eq!(RefreshConfig::default().lanes, 1);
        assert_eq!(RefreshConfig::with_lanes(0).lanes, 1);
        assert_eq!(RefreshConfig::with_lanes(8).lanes, 8);
        assert_eq!(RefreshConfig::default().run_ahead_window, None);
        assert_eq!(RefreshConfig::default().refresh_mode, RefreshMode::Auto);
        let c = RefreshConfig::with_lanes(2)
            .with_run_ahead_window(3)
            .with_refresh_mode(RefreshMode::AlwaysIncremental);
        assert_eq!(c.run_ahead_window, Some(3));
        assert_eq!(c.refresh_mode, RefreshMode::AlwaysIncremental);
    }

    #[test]
    fn explicit_run_ahead_window_is_honored() {
        let (_dir, disk, mem) = setup(4 << 20);
        let mvs = wide_workload();
        let plan = plan_for(&mvs, &[]);
        // A window of 0 serializes starts to the computed prefix; the run
        // must still complete and produce every MV.
        let m = Controller::new(&disk, &mem)
            .with_refresh_config(RefreshConfig::with_lanes(3).with_run_ahead_window(0))
            .refresh(&mvs, &plan)
            .unwrap();
        assert_eq!(m.nodes.len(), 5);
        for mv in &mvs {
            assert!(disk.contains(&mv.name));
        }
    }

    /// Incremental-refresh workload: a filtered slice and an aggregate
    /// over one base table, plus an untouched independent branch.
    fn delta_workload() -> Vec<MvDefinition> {
        vec![
            MvDefinition::new(
                "big_rows",
                LogicalPlan::scan("base").filter(Expr::col("v").ge(Expr::lit(100.0f64))),
            ),
            MvDefinition::new(
                "by_k",
                LogicalPlan::scan("big_rows").aggregate(
                    vec!["k".into()],
                    vec![
                        AggExpr::new(crate::exec::AggFunc::Sum, "v", "sum_v"),
                        AggExpr::new(crate::exec::AggFunc::Count, "v", "n"),
                    ],
                ),
            ),
            MvDefinition::new(
                "other_branch",
                LogicalPlan::scan("side").filter(Expr::col("k").eq(Expr::lit(1i64))),
            ),
        ]
    }

    fn delta_rows(range: std::ops::Range<i64>) -> Table {
        let mut t = TableBuilder::new()
            .column("k", DataType::Int64)
            .column("v", DataType::Float64)
            .build();
        for i in range {
            t.push_row(vec![Value::Int64(i % 7), Value::Float64(i as f64)])
                .unwrap();
        }
        t
    }

    #[test]
    fn incremental_refresh_matches_full_and_skips_untouched() {
        for lanes in [1usize, 4] {
            let dir_a = tempfile::tempdir().unwrap();
            let dir_b = tempfile::tempdir().unwrap();
            let mvs = delta_workload();
            let plan = plan_for(&mvs, &[0]);
            let mut disks = Vec::new();
            for dir in [&dir_a, &dir_b] {
                let disk = DiskCatalog::open(dir.path()).unwrap();
                disk.write_table("base", &delta_rows(0..400)).unwrap();
                disk.write_table("side", &delta_rows(0..50)).unwrap();
                let mem = MemoryCatalog::new(8 << 20);
                Controller::new(&disk, &mem)
                    .with_lanes(lanes)
                    .refresh(&mvs, &plan)
                    .unwrap();
                disks.push((disk, mem));
            }

            // Same churn on both systems; one refreshes incrementally.
            let full_store = DeltaStore::new();
            let inc_store = DeltaStore::new();
            for ((disk, _), store) in disks.iter().zip([&full_store, &inc_store]) {
                crate::storage::ingest(
                    disk,
                    store,
                    "base",
                    crate::exec::TableDelta::insert_only(delta_rows(400..440)),
                )
                .unwrap();
            }

            let (disk_full, mem_full) = &disks[0];
            let full = Controller::new(disk_full, mem_full)
                .with_delta_store(&full_store)
                .with_refresh_config(
                    RefreshConfig::with_lanes(lanes).with_refresh_mode(RefreshMode::AlwaysFull),
                )
                .refresh(&mvs, &plan)
                .unwrap();
            let (disk_inc, mem_inc) = &disks[1];
            let inc = Controller::new(disk_inc, mem_inc)
                .with_delta_store(&inc_store)
                .with_refresh_config(
                    RefreshConfig::with_lanes(lanes)
                        .with_refresh_mode(RefreshMode::AlwaysIncremental),
                )
                .refresh(&mvs, &plan)
                .unwrap();

            for mv in &mvs {
                assert_eq!(
                    disk_full.read_table(&mv.name).unwrap(),
                    disk_inc.read_table(&mv.name).unwrap(),
                    "lanes={lanes}: incremental must match full for {}",
                    mv.name
                );
            }
            assert!(full.nodes.iter().all(|n| n.mode == NodeMode::Full));
            let by_name =
                |m: &RunMetrics, n: &str| m.nodes.iter().find(|x| x.name == n).cloned().unwrap();
            assert_eq!(
                by_name(&inc, "big_rows").mode,
                NodeMode::Incremental,
                "lanes={lanes}"
            );
            assert_eq!(by_name(&inc, "by_k").mode, NodeMode::Incremental);
            assert_eq!(
                by_name(&inc, "other_branch").mode,
                NodeMode::Skipped,
                "untouched branch must be skipped"
            );
            assert!(by_name(&inc, "big_rows").delta_bytes > 0);
            assert!(mem_inc.is_empty());
            assert!(inc_store.is_empty(), "successful refresh consumes the log");
            // Spilled delta files must not survive the run.
            assert!(!disk_inc.contains(&delta_entry_name("big_rows")));
        }
    }

    #[test]
    fn empty_delta_log_recomputes_instead_of_skipping() {
        // An attached-but-empty log means "no delta tracking", not "skip
        // everything": profiling runs must observe real work, and the
        // active snapshot still catches batches ingested mid-run.
        let (_dir, disk, mem) = setup(1 << 20);
        let mvs = fig4_workload();
        let plan = plan_for(&mvs, &[]);
        Controller::new(&disk, &mem).refresh(&mvs, &plan).unwrap();

        let store = DeltaStore::new();
        let m = Controller::new(&disk, &mem)
            .with_delta_store(&store)
            .refresh(&mvs, &plan)
            .unwrap();
        assert!(
            m.nodes.iter().all(|n| n.mode == NodeMode::Full),
            "empty log must recompute, not skip: {:?}",
            m.nodes
                .iter()
                .map(|n| (&n.name, n.mode))
                .collect::<Vec<_>>()
        );
        assert!(!store.is_poisoned(), "no mid-run ingest, no poison");
    }

    #[test]
    fn delta_payload_reserves_delta_sized_flags() {
        // big_rows is flagged and its only consumer (by_k) maintains
        // incrementally: the catalog must hold the delta, not the table.
        let dir = tempfile::tempdir().unwrap();
        let disk = DiskCatalog::open(dir.path()).unwrap();
        disk.write_table("base", &delta_rows(0..400)).unwrap();
        disk.write_table("side", &delta_rows(0..50)).unwrap();
        let mem = MemoryCatalog::new(8 << 20);
        let mvs = delta_workload();
        let plan = plan_for(&mvs, &[0]);
        let c = Controller::new(&disk, &mem);
        let probe = c.refresh(&mvs, &plan).unwrap();
        let full_flag_peak = probe.peak_memory_bytes;
        assert!(full_flag_peak > 0);

        let store = DeltaStore::new();
        crate::storage::ingest(
            &disk,
            &store,
            "base",
            crate::exec::TableDelta::insert_only(delta_rows(400..420)),
        )
        .unwrap();
        let inc = Controller::new(&disk, &mem)
            .with_delta_store(&store)
            .with_refresh_config(
                RefreshConfig::default().with_refresh_mode(RefreshMode::AlwaysIncremental),
            )
            .refresh(&mvs, &plan)
            .unwrap();
        assert!(
            inc.nodes[0].flagged,
            "delta payload still counts as flagged"
        );
        assert!(
            inc.peak_memory_bytes < full_flag_peak / 4,
            "delta-sized reservation ({}) must be far below the full table ({full_flag_peak})",
            inc.peak_memory_bytes
        );
        assert!(mem.is_empty());
    }

    #[test]
    fn failed_run_poisons_the_log_and_retry_recomputes_correctly() {
        // An incremental node persists its applied delta, then a later
        // node fails: the log must be poisoned so the retry recomputes
        // from the (authoritative) bases instead of applying the delta a
        // second time — incremental application is not idempotent.
        let dir = tempfile::tempdir().unwrap();
        let disk = DiskCatalog::open(dir.path()).unwrap();
        disk.write_table("base", &delta_rows(0..400)).unwrap();
        disk.write_table("side", &delta_rows(0..50)).unwrap();
        let mem = MemoryCatalog::new(8 << 20);
        let good = delta_workload();
        let good_plan = plan_for(&good, &[]);
        Controller::new(&disk, &mem)
            .refresh(&good, &good_plan)
            .unwrap();

        let store = DeltaStore::new();
        crate::storage::ingest(
            &disk,
            &store,
            "base",
            crate::exec::TableDelta::insert_only(delta_rows(400..430)),
        )
        .unwrap();

        // A doomed run: the good nodes first, then one scanning a missing
        // table.
        let mut doomed = delta_workload();
        doomed.push(MvDefinition::new("boom", LogicalPlan::scan("no_such")));
        let doomed_plan = plan_for(&doomed, &[]);
        let err = Controller::new(&disk, &mem)
            .with_delta_store(&store)
            .with_refresh_config(
                RefreshConfig::default().with_refresh_mode(RefreshMode::AlwaysIncremental),
            )
            .refresh(&doomed, &doomed_plan);
        assert!(matches!(err, Err(EngineError::UnknownTable(_))));
        assert!(store.is_poisoned(), "failed run must poison the log");
        assert!(!store.is_empty(), "failed run must keep the log");

        // Retry on the good set: every delta-reached node recomputes in
        // full; results match a system that never failed.
        let retry = Controller::new(&disk, &mem)
            .with_delta_store(&store)
            .refresh(&good, &good_plan)
            .unwrap();
        assert!(retry.nodes.iter().all(|n| n.mode != NodeMode::Incremental));
        assert!(store.is_empty() && !store.is_poisoned());

        // Control rig: same base + same churn, one clean full refresh.
        let dir2 = tempfile::tempdir().unwrap();
        let disk2 = DiskCatalog::open(dir2.path()).unwrap();
        disk2.write_table("base", &delta_rows(0..400)).unwrap();
        disk2.write_table("side", &delta_rows(0..50)).unwrap();
        let mem2 = MemoryCatalog::new(8 << 20);
        Controller::new(&disk2, &mem2)
            .refresh(&good, &good_plan)
            .unwrap();
        let base2 = disk2.read_table("base").unwrap();
        let delta = crate::exec::TableDelta::insert_only(delta_rows(400..430));
        disk2
            .write_table("base", &delta.apply(&base2).unwrap())
            .unwrap();
        Controller::new(&disk2, &mem2)
            .refresh(&good, &good_plan)
            .unwrap();
        for mv in &good {
            assert_eq!(
                disk.read_table(&mv.name).unwrap(),
                disk2.read_table(&mv.name).unwrap(),
                "recovered {} must match a never-failed system",
                mv.name
            );
        }
    }

    #[test]
    fn auto_mode_appends_insert_only_chains_and_merges_aggregates() {
        // Insert-only churn: big_rows (MV nearly as large as its input)
        // used to lose under Auto because the incremental path re-read and
        // rewrote the whole MV; with segmented storage it appends a
        // delta-sized segment instead, so Auto now picks it — and by_k
        // merges the published delta.
        let dir = tempfile::tempdir().unwrap();
        let disk = DiskCatalog::open(dir.path()).unwrap();
        disk.write_table("base", &delta_rows(0..2000)).unwrap();
        disk.write_table("side", &delta_rows(0..50)).unwrap();
        let mem = MemoryCatalog::new(8 << 20);
        let mvs = delta_workload();
        let plan = plan_for(&mvs, &[]);
        let c = Controller::new(&disk, &mem);
        c.refresh(&mvs, &plan).unwrap();

        let store = DeltaStore::new();
        crate::storage::ingest(
            &disk,
            &store,
            "base",
            crate::exec::TableDelta::insert_only(delta_rows(2000..2040)),
        )
        .unwrap();
        let auto = Controller::new(&disk, &mem)
            .with_delta_store(&store)
            .refresh(&mvs, &plan)
            .unwrap();
        assert_eq!(auto.nodes[0].mode, NodeMode::Incremental);
        assert!(
            auto.nodes[0].appended_bytes > 0,
            "big_rows persists via the append path"
        );
        assert_eq!(auto.nodes[0].segments, 2, "one appended segment");
        // by_k's 7-group output is so small that the merge path's three
        // paced storage accesses (delta spill, own contents, rewrite)
        // cost more than one recompute — Auto stays conservative there.
        assert_eq!(auto.nodes[1].mode, NodeMode::Full);
        assert_eq!(auto.nodes[1].reason, ModeReason::CostModel);
        assert_eq!(auto.nodes[2].mode, NodeMode::Skipped);
        assert_eq!(disk.segment_count("big_rows").unwrap(), 2);

        // Delete-carrying churn: the filter chain stays maintainable but
        // loses its append path, and re-reading + rewriting an MV almost
        // as large as its input loses under Auto — the rewrite-path
        // conservatism is preserved, and it composes transitively to
        // by_k.
        let mut deletes = crate::table::TableBuilder::new()
            .column("k", DataType::Int64)
            .column("v", DataType::Float64)
            .build();
        deletes
            .push_row(vec![Value::Int64(3), Value::Float64(3.0)])
            .unwrap();
        crate::storage::ingest(
            &disk,
            &store,
            "base",
            crate::exec::TableDelta::from_batch(crate::exec::DeltaBatch {
                deletes,
                inserts: delta_rows(0..0),
            })
            .unwrap(),
        )
        .unwrap();
        let auto = Controller::new(&disk, &mem)
            .with_delta_store(&store)
            .refresh(&mvs, &plan)
            .unwrap();
        assert_eq!(auto.nodes[0].mode, NodeMode::Full);
        assert_eq!(auto.nodes[1].mode, NodeMode::Full);
        assert_eq!(
            auto.nodes[0].segments, 1,
            "the recompute collapses big_rows back to canonical form"
        );
    }
}
