//! # sc-engine — a mini columnar warehouse for S/C
//!
//! The S/C paper treats the DBMS as a black box that executes SQL and can
//! read its inputs either from external storage or from an in-memory
//! *Memory Catalog* (the paper's implementation drives Presto's `hive` and
//! `memory` connectors). This crate is that black box, built from scratch:
//!
//! * a typed, columnar data model ([`Table`], [`Column`], [`Schema`]);
//! * scalar expressions ([`expr::Expr`]) and relational operators
//!   (filter / project / hash join / hash aggregate / sort / limit / union)
//!   composed into a [`plan::LogicalPlan`];
//! * a [`storage::DiskCatalog`] persisting tables in a self-describing
//!   columnar file format, with an optional bandwidth/latency
//!   [`storage::Throttle`] calibrated to the paper's disk;
//! * a bounded [`storage::MemoryCatalog`] with peak-usage accounting;
//! * an append-only delta log ([`storage::DeltaStore`]) and delta-aware
//!   operators ([`exec::delta`]) enabling *incremental* MV maintenance:
//!   refreshes apply only what changed, byte-identical to recomputation;
//! * a [`controller::Controller`] that performs an MV refresh run for a
//!   given [`sc_core::Plan`]: flagged nodes are created directly in memory,
//!   materialized to storage in the background (in parallel with downstream
//!   work, §III-C), and released once all their consumers finish; per node
//!   it chooses full recompute vs delta maintenance vs skipping
//!   ([`sc_core::RefreshMode`]).
//!
//! ```
//! use sc_engine::prelude::*;
//!
//! let mut t = TableBuilder::new()
//!     .column("id", DataType::Int64)
//!     .column("amount", DataType::Float64)
//!     .build();
//! t.push_row(vec![Value::Int64(1), Value::Float64(10.5)]).unwrap();
//! t.push_row(vec![Value::Int64(2), Value::Float64(7.25)]).unwrap();
//!
//! let plan = LogicalPlan::scan("orders")
//!     .filter(Expr::col("amount").gt(Expr::lit(8.0)))
//!     .project(vec![(Expr::col("id"), "id".into())]);
//! let mut tables = std::collections::HashMap::new();
//! tables.insert("orders".to_string(), std::sync::Arc::new(t));
//! let out = plan.execute(&tables).unwrap();
//! assert_eq!(out.num_rows(), 1);
//! ```

#![warn(missing_docs)]

/// Typed columnar vectors backing [`Table`].
pub mod column;
pub mod controller;
/// The crate-wide [`EngineError`] type.
pub mod error;
pub mod exec;
pub mod expr;
pub mod plan;
/// Table schemas: named, typed fields.
pub mod schema;
pub mod storage;
/// The columnar [`Table`] and its builder.
pub mod table;
/// Scalar [`DataType`]s and [`Value`]s.
pub mod types;

pub use column::Column;
pub use controller::{
    Controller, ControllerConfig, CostProvenance, NodeMetrics, RefreshConfig, RunMetrics,
};
pub use error::EngineError;
pub use schema::{Field, Schema};
pub use table::{Table, TableBuilder};
pub use types::{DataType, Value};

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Commonly used items.
pub mod prelude {
    pub use crate::column::Column;
    pub use crate::controller::{Controller, ControllerConfig, RefreshConfig, RunMetrics};
    pub use crate::exec::{DeltaBatch, TableDelta};
    pub use crate::expr::Expr;
    pub use crate::plan::{AggExpr, JoinType, LogicalPlan};
    pub use crate::schema::{Field, Schema};
    pub use crate::storage::{DeltaStore, DiskCatalog, MemoryCatalog, ObservationStore, Throttle};
    pub use crate::table::{Table, TableBuilder};
    pub use crate::types::{DataType, Value};
}
