use std::fmt::Write as _;
use std::sync::Arc;

use crate::column::Column;
use crate::schema::{Field, Schema};
use crate::types::{DataType, Value};
use crate::{EngineError, Result};

/// An immutable-schema, columnar table (the unit the catalogs store and the
/// operators consume/produce).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Creates a table from a schema and matching columns.
    pub fn new(schema: Arc<Schema>, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(EngineError::ArityMismatch {
                expected: schema.len(),
                got: columns.len(),
            });
        }
        let num_rows = columns.first().map(Column::len).unwrap_or(0);
        for (f, c) in schema.fields().iter().zip(&columns) {
            if f.dtype != c.data_type() {
                return Err(EngineError::TypeMismatch {
                    expected: f.dtype.to_string(),
                    got: c.data_type().to_string(),
                    context: format!("column '{}'", f.name),
                });
            }
            if c.len() != num_rows {
                return Err(EngineError::ArityMismatch {
                    expected: num_rows,
                    got: c.len(),
                });
            }
        }
        Ok(Table {
            schema,
            columns,
            num_rows,
        })
    }

    /// An empty table with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.dtype))
            .collect();
        Table {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The column named `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Appends a row of values in schema order.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(EngineError::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        // Validate all values first so a failed push cannot leave ragged
        // columns behind.
        for (c, v) in self.columns.iter().zip(&row) {
            if c.data_type() != v.data_type() {
                return Err(EngineError::TypeMismatch {
                    expected: c.data_type().to_string(),
                    got: v.data_type().to_string(),
                    context: "Table::push_row".into(),
                });
            }
        }
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push(v).expect("validated above");
        }
        self.num_rows += 1;
        Ok(())
    }

    /// The value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Total in-memory footprint in bytes (the `si` the optimizer sees).
    pub fn byte_size(&self) -> u64 {
        self.columns.iter().map(Column::byte_size).sum()
    }

    /// A new table keeping only rows where `mask` is true.
    pub fn filter_rows(&self, mask: &[bool]) -> Result<Table> {
        if mask.len() != self.num_rows {
            return Err(EngineError::ArityMismatch {
                expected: self.num_rows,
                got: mask.len(),
            });
        }
        let columns: Vec<Column> = self.columns.iter().map(|c| c.filter(mask)).collect();
        Table::new(self.schema.clone(), columns)
    }

    /// A new table with rows gathered by `indices` (duplicates allowed).
    pub fn take_rows(&self, indices: &[usize]) -> Result<Table> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.num_rows) {
            return Err(EngineError::ArityMismatch {
                expected: self.num_rows,
                got: bad,
            });
        }
        let columns: Vec<Column> = self.columns.iter().map(|c| c.take(indices)).collect();
        Table::new(self.schema.clone(), columns)
    }

    /// Concatenates tables with identical schemas.
    pub fn concat(tables: &[&Table]) -> Result<Table> {
        let first = tables
            .first()
            .ok_or_else(|| EngineError::InvalidPlan("concat requires at least one table".into()))?;
        let mut out = Table::empty(first.schema.clone());
        for t in tables {
            if t.schema != first.schema {
                return Err(EngineError::TypeMismatch {
                    expected: first.schema.to_string(),
                    got: t.schema.to_string(),
                    context: "concat".into(),
                });
            }
            for (dst, src) in out.columns.iter_mut().zip(&t.columns) {
                dst.extend(src)?;
            }
            out.num_rows += t.num_rows;
        }
        Ok(out)
    }

    /// Renders the first `limit` rows as an ASCII table (for examples and
    /// debugging).
    pub fn pretty(&self, limit: usize) -> String {
        let mut s = String::new();
        let names: Vec<&str> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        let _ = writeln!(s, "| {} |", names.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            names
                .iter()
                .map(|n| "-".repeat(n.len() + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in 0..self.num_rows.min(limit) {
            let vals: Vec<String> = (0..self.num_columns())
                .map(|c| self.value(row, c).to_string())
                .collect();
            let _ = writeln!(s, "| {} |", vals.join(" | "));
        }
        if self.num_rows > limit {
            let _ = writeln!(s, "... {} more rows", self.num_rows - limit);
        }
        s
    }
}

/// Fluent builder for small tables (tests, examples, dimension data).
#[derive(Debug, Default)]
pub struct TableBuilder {
    fields: Vec<Field>,
}

impl TableBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        TableBuilder { fields: Vec::new() }
    }

    /// Adds a column.
    pub fn column(mut self, name: impl Into<String>, dtype: DataType) -> Self {
        self.fields.push(Field::new(name, dtype));
        self
    }

    /// Builds the (empty) table; panics on duplicate column names, which is
    /// a programming error in construction code.
    pub fn build(self) -> Table {
        let schema = Schema::new(self.fields).expect("duplicate column name in TableBuilder");
        Table::empty(Arc::new(schema))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = TableBuilder::new()
            .column("id", DataType::Int64)
            .column("name", DataType::Utf8)
            .column("score", DataType::Float64)
            .build();
        t.push_row(vec![1.into(), "alice".into(), 9.5.into()])
            .unwrap();
        t.push_row(vec![2.into(), "bob".into(), 7.0.into()])
            .unwrap();
        t.push_row(vec![3.into(), "carol".into(), 8.25.into()])
            .unwrap();
        t
    }

    #[test]
    fn build_and_access() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.value(1, 1), Value::Utf8("bob".into()));
        assert_eq!(t.column_by_name("score").unwrap().len(), 3);
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn push_row_validates_before_mutating() {
        let mut t = sample();
        // Wrong type in the *last* column: nothing must be appended.
        let err = t.push_row(vec![4.into(), "dave".into(), Value::Bool(true)]);
        assert!(err.is_err());
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.column(0).len(), 3, "no partial row may remain");
        // Wrong arity.
        assert!(t.push_row(vec![4.into()]).is_err());
    }

    #[test]
    fn new_validates_schema_and_lengths() {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Bool),
            ])
            .unwrap(),
        );
        assert!(Table::new(schema.clone(), vec![Column::Int64(vec![1])]).is_err());
        assert!(Table::new(
            schema.clone(),
            vec![Column::Int64(vec![1]), Column::Int64(vec![2])]
        )
        .is_err());
        assert!(Table::new(
            schema,
            vec![Column::Int64(vec![1]), Column::Bool(vec![true, false])]
        )
        .is_err());
    }

    #[test]
    fn filter_and_take() {
        let t = sample();
        let f = t.filter_rows(&[true, false, true]).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(1, 1), Value::Utf8("carol".into()));
        let g = t.take_rows(&[2, 2, 0]).unwrap();
        assert_eq!(g.num_rows(), 3);
        assert_eq!(g.value(0, 0), Value::Int64(3));
        assert!(t.take_rows(&[9]).is_err());
        assert!(t.filter_rows(&[true]).is_err());
    }

    #[test]
    fn concat_requires_same_schema() {
        let t = sample();
        let joined = Table::concat(&[&t, &t]).unwrap();
        assert_eq!(joined.num_rows(), 6);
        let other = TableBuilder::new().column("x", DataType::Bool).build();
        assert!(Table::concat(&[&t, &other]).is_err());
        assert!(Table::concat(&[]).is_err());
    }

    #[test]
    fn byte_size_counts_strings() {
        let t = sample();
        // 3 i64 (24) + 3 f64 (24) + strings (5+3+5 bytes + 3*24 header).
        assert_eq!(t.byte_size(), 24 + 24 + (5 + 3 + 5 + 72));
    }

    #[test]
    fn pretty_renders_and_truncates() {
        let t = sample();
        let p = t.pretty(2);
        assert!(p.contains("alice"));
        assert!(p.contains("1 more rows"));
        assert!(!p.contains("carol"));
    }
}
