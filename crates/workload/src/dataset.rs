//! The dataset axis of the evaluation: TPC-DS scale factors and the
//! date-partitioned variant.
//!
//! §VI-A: "We create two copies of each dataset for each scale. One is a
//! normal dataset generated as is (TPC-DS). The other is a date-partitioned
//! dataset wherein the three largest tables (store_sales, catalog_sales,
//! web_sales) are partitioned by year [...] (TPC-DSp)." Partitioning lets
//! year-scoped MV updates scan one partition instead of the whole fact
//! table, which shrinks both base reads and intermediate sizes — the
//! reason the paper's TPC-DSp speedups are larger.

use serde::{Deserialize, Serialize};

/// Bytes per gigabyte (decimal, matching TPC-DS scale factors).
pub const GB: f64 = 1e9;

/// A TPC-DS dataset instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Scale factor in GB (the paper uses 10, 25, 50, 100, 1000).
    pub scale_gb: f64,
    /// Whether the three fact tables are partitioned by year (TPC-DSp).
    pub partitioned: bool,
}

impl DatasetSpec {
    /// Regular TPC-DS at `scale_gb`.
    pub fn tpcds(scale_gb: f64) -> Self {
        DatasetSpec {
            scale_gb,
            partitioned: false,
        }
    }

    /// Date-partitioned TPC-DSp at `scale_gb`.
    pub fn tpcds_partitioned(scale_gb: f64) -> Self {
        DatasetSpec {
            scale_gb,
            partitioned: true,
        }
    }

    /// Total dataset size in bytes.
    pub fn total_bytes(&self) -> u64 {
        (self.scale_gb * GB) as u64
    }

    /// Size of one fact table as a fraction of the dataset. TPC-DS's three
    /// big fact tables dominate the dataset; the published size breakdown
    /// at SF100 is roughly store_sales 37 %, catalog_sales 28 %,
    /// web_sales 14 %, with dimensions and the remaining fact tables
    /// making up the rest.
    pub fn fact_fraction(table: FactTable) -> f64 {
        match table {
            FactTable::StoreSales => 0.37,
            FactTable::CatalogSales => 0.28,
            FactTable::WebSales => 0.14,
        }
    }

    /// Bytes a scan of `table` must read for a *year-scoped* MV update:
    /// the whole table unpartitioned, roughly one of five year partitions
    /// when partitioned (TPC-DS covers 1998–2002).
    pub fn fact_scan_bytes(&self, table: FactTable) -> u64 {
        let full = Self::fact_fraction(table) * self.scale_gb * GB;
        let scan = if self.partitioned { full / 5.0 } else { full };
        scan as u64
    }

    /// The paper's Memory Catalog sizing convention: a percentage of the
    /// dataset size (Figure 10 uses 1.6 %, Figure 11 sweeps 0.4–6.4 %).
    pub fn memory_budget(&self, percent: f64) -> u64 {
        (self.scale_gb * GB * percent / 100.0) as u64
    }

    /// Short label, e.g. `"100GB TPC-DSp"`.
    pub fn label(&self) -> String {
        format!(
            "{}GB TPC-DS{}",
            self.scale_gb,
            if self.partitioned { "p" } else { "" }
        )
    }
}

/// The three large, partitionable fact tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FactTable {
    /// `store_sales` — the largest fact table.
    StoreSales,
    /// `catalog_sales`.
    CatalogSales,
    /// `web_sales`.
    WebSales,
}

impl FactTable {
    /// All fact tables.
    pub fn all() -> [FactTable; 3] {
        [
            FactTable::StoreSales,
            FactTable::CatalogSales,
            FactTable::WebSales,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_budgets() {
        let d = DatasetSpec::tpcds(100.0);
        assert_eq!(d.total_bytes(), 100_000_000_000);
        assert_eq!(d.memory_budget(1.6), 1_600_000_000);
        assert_eq!(d.label(), "100GB TPC-DS");
        assert_eq!(DatasetSpec::tpcds_partitioned(10.0).label(), "10GB TPC-DSp");
    }

    #[test]
    fn partitioning_shrinks_fact_scans_fivefold() {
        let flat = DatasetSpec::tpcds(100.0);
        let part = DatasetSpec::tpcds_partitioned(100.0);
        for t in FactTable::all() {
            assert_eq!(part.fact_scan_bytes(t) * 5, flat.fact_scan_bytes(t));
        }
    }

    #[test]
    fn fact_fractions_are_dominant_but_below_one() {
        let total: f64 = FactTable::all()
            .into_iter()
            .map(DatasetSpec::fact_fraction)
            .sum();
        assert!(total > 0.7 && total < 1.0);
    }

    #[test]
    fn scan_bytes_scale_linearly() {
        let small = DatasetSpec::tpcds(10.0);
        let big = DatasetSpec::tpcds(1000.0);
        assert_eq!(
            small.fact_scan_bytes(FactTable::StoreSales) * 100,
            big.fact_scan_bytes(FactTable::StoreSales)
        );
    }
}
