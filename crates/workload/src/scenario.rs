//! Unified **scenario specifications**: one value describing base tables,
//! the MV DAG, a churn schedule, and the engine/sim configuration — the
//! single source of truth from which both the real engine (`sc`'s
//! `ScSession::from_spec`) and the simulator construct their rigs.
//!
//! Before this module, engine/sim parity was held only by tests: `sc-sim`
//! re-declared lane counts, refresh modes, budgets, and per-node churn
//! annotations by hand, and any drift between the two declarations showed
//! up as a confusing test failure rather than a type error. A
//! [`ScenarioSpec`] makes the parity hold *by construction*: the engine
//! side loads the spec's tables and registers its MV definitions, and the
//! sim side derives its [`sc_sim::SimConfig`] and (after a profiling run)
//! its annotated [`sc_sim::SimWorkload`] from the very same value.

use std::collections::{HashMap, HashSet};

use sc_core::RefreshMode;
use sc_engine::controller::{MvDefinition, RefreshConfig, RunMetrics};
use sc_engine::storage::{DeltaStore, DiskCatalog, ObservationStore, Throttle};
use sc_engine::{DataType, Table, TableBuilder, Value};
use sc_sim::{SimConfig, SimWorkload};

use crate::corpus::ScenarioError;
use crate::tpcds::TinyTpcds;
use crate::tpch_shaped::TpchSpec;
use crate::updates::{generate_delta, mirror_workload, pending_churn, UpdateStreamSpec};

/// A literal base table spelled out row by row — the corpus's tool for
/// pinning exact byte-level behavior (a specific join-null fill, a
/// duplicate that `distinct` must collapse) where a generated dataset
/// would bury the interesting rows.
#[derive(Debug, Clone, PartialEq)]
pub struct InlineTable {
    /// Table name.
    pub name: String,
    /// Columns as `(name, type)` pairs, in order.
    pub columns: Vec<(String, DataType)>,
    /// Row values, one `Vec` per row, matching `columns`.
    pub rows: Vec<Vec<Value>>,
}

impl InlineTable {
    /// Materializes the literal rows into a [`Table`].
    pub fn build(&self) -> sc_engine::Result<Table> {
        let mut b = TableBuilder::new();
        for (name, dtype) in &self.columns {
            b = b.column(name, *dtype);
        }
        let mut t = b.build();
        for row in &self.rows {
            t.push_row(row.clone())?;
        }
        Ok(t)
    }
}

/// How a scenario's base tables are produced.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSpec {
    /// The bundled TPC-DS-style generator ([`TinyTpcds::generate`]).
    TinyTpcds {
        /// Scale factor (1.0 ≈ a few MB of base data).
        scale: f64,
        /// Generator seed; equal seeds produce byte-identical tables.
        seed: u64,
    },
    /// The TPC-H-shaped star/snowflake generator
    /// ([`TpchSpec::generate`]), with Zipf-skewed fact keys.
    TpchShaped(TpchSpec),
    /// Literal tables spelled out in the scenario itself.
    Inline(Vec<InlineTable>),
}

impl TableSpec {
    /// Generates the tables and writes them into `disk` (the "data
    /// ingestion" step preceding the first refresh).
    pub fn load_into(&self, disk: &DiskCatalog) -> sc_engine::Result<()> {
        match self {
            TableSpec::TinyTpcds { scale, seed } => {
                TinyTpcds::generate(*scale, *seed).load_into(disk)
            }
            TableSpec::TpchShaped(spec) => spec.load_into(disk),
            TableSpec::Inline(tables) => {
                for t in tables {
                    disk.write_table(&t.name, &t.build()?)?;
                }
                Ok(())
            }
        }
    }

    /// Names of every table this spec produces (sorted for the generator
    /// variants, declaration order for inline tables) — what scenario
    /// validation resolves MV and churn references against.
    pub fn table_names(&self) -> Vec<String> {
        match self {
            TableSpec::TinyTpcds { .. } => [
                "catalog_sales",
                "customer",
                "date_dim",
                "item",
                "store",
                "store_sales",
                "web_sales",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            TableSpec::TpchShaped(spec) => spec.table_names(),
            TableSpec::Inline(tables) => tables.iter().map(|t| t.name.clone()).collect(),
        }
    }
}

/// One round of a scenario's churn schedule: a seeded update stream
/// against a set of base tables.
///
/// Rounds are deterministic per `(round, stored state)`: generating a
/// round against two catalogs holding identical bases yields identical
/// deltas, which is what lets a concurrent rig and a sequential reference
/// rig ingest "the same" churn.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnRound {
    /// Base tables receiving the stream this round.
    pub tables: Vec<String>,
    /// Insert/update/delete mix, as fractions of each table's current
    /// rows.
    pub stream: UpdateStreamSpec,
    /// Stream seed (offset per table so tables don't see clone streams).
    pub seed: u64,
}

impl ChurnRound {
    /// An insert-only round against `tables` at `fraction` of current
    /// rows — the append-mostly shape of real fact streams.
    pub fn inserts(
        tables: impl IntoIterator<Item = impl Into<String>>,
        fraction: f64,
        seed: u64,
    ) -> Self {
        ChurnRound {
            tables: tables.into_iter().map(Into::into).collect(),
            stream: UpdateStreamSpec::inserts(fraction),
            seed,
        }
    }

    /// Generates this round's delta per table from the table's *current*
    /// stored contents and ingests it (base updated + delta logged).
    pub fn ingest_into(&self, disk: &DiskCatalog, store: &DeltaStore) -> sc_engine::Result<()> {
        for (i, table) in self.tables.iter().enumerate() {
            let base = disk.read_table(table)?;
            let delta = generate_delta(&base, &self.stream, self.seed.wrapping_add(i as u64));
            sc_engine::storage::ingest(disk, store, table, delta)?;
        }
        Ok(())
    }
}

/// The configuration half of a scenario, shared verbatim by the engine
/// (as a [`RefreshConfig`] plus catalog budget/throttle) and the
/// simulator (as a [`SimConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Memory Catalog budget `M`, bytes.
    pub memory_budget: u64,
    /// Compute lanes executing DAG nodes (1 = the paper's sequential
    /// controller).
    pub lanes: usize,
    /// Multi-lane run-ahead window override (`None` derives it from the
    /// lane count).
    pub run_ahead_window: Option<usize>,
    /// Full-vs-incremental maintenance policy.
    pub refresh_mode: RefreshMode,
    /// Optional storage pacing for the engine side; when set, the sim's
    /// disk bandwidths are taken from it too, so both sides model the
    /// same device.
    pub throttle: Option<Throttle>,
    /// Compact every MV back to canonical single-segment form after every
    /// N-th churn round (`None` = never): experiments poll
    /// [`ScenarioSpec::compact_due`] after each round they refresh, so
    /// the same spec can exercise both fragmented (append-path segments
    /// accumulating) and compacted storage states.
    pub compact_every: Option<usize>,
    /// Whether the engine side persists runtime observations and lets
    /// `Auto` consult them (the `observations.scst` sidecar). On by
    /// default; differential experiments pinning exact decisions turn it
    /// off so measured timings cannot shift a mode choice mid-suite.
    pub runtime_feedback: bool,
    /// Steady-state serving-tier read load, bytes/s, stolen from the
    /// sim's disk-read channel ([`SimConfig::reader_read_bps`]). Measure
    /// it from a real front end (`sc-serve`'s `Stats` reports bytes
    /// served; the `serve_queries` bench prints `bytes/s`) and feed it
    /// back here so the simulator predicts refresh latency *under that
    /// serving load*. `0.0` (the default) models a quiet system.
    pub reader_read_bps: f64,
}

impl ScenarioConfig {
    /// Sequential, Auto-mode configuration with `memory_budget` bytes and
    /// unthrottled storage.
    pub fn new(memory_budget: u64) -> Self {
        ScenarioConfig {
            memory_budget,
            lanes: 1,
            run_ahead_window: None,
            refresh_mode: RefreshMode::Auto,
            throttle: None,
            compact_every: None,
            runtime_feedback: true,
            reader_read_bps: 0.0,
        }
    }
}

/// A complete scenario: base tables, the MV DAG, a churn schedule, and
/// one shared configuration.
///
/// Consumers:
///
/// * the engine — `ScSession::from_spec` in the `sc` crate opens a
///   session, loads [`ScenarioSpec::tables`], registers
///   [`ScenarioSpec::mvs`], and applies the config;
/// * churn — [`ScenarioSpec::ingest_round`] replays the schedule against
///   the session's catalogs;
/// * the simulator — [`ScenarioSpec::sim_config`] and
///   [`ScenarioSpec::mirror`] derive the simulation rig from the same
///   value, so `tests/sim_engine_parity.rs` cannot drift.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario label (reports and error messages).
    pub name: String,
    /// How base tables are produced.
    pub tables: TableSpec,
    /// The MV DAG, in registration order (dependencies are inferred from
    /// each plan's scans, exactly as `ScSession::register_mv` does).
    pub mvs: Vec<MvDefinition>,
    /// Churn schedule; rounds are applied explicitly via
    /// [`ScenarioSpec::ingest_round`], interleaved with refreshes however
    /// the experiment demands.
    pub churn: Vec<ChurnRound>,
    /// Shared engine/sim configuration.
    pub config: ScenarioConfig,
}

impl ScenarioSpec {
    /// A scenario over generated TPC-DS-style tables with an empty churn
    /// schedule and a sequential Auto-mode config.
    pub fn new(
        name: impl Into<String>,
        tables: TableSpec,
        mvs: Vec<MvDefinition>,
        memory_budget: u64,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            tables,
            mvs,
            churn: Vec::new(),
            config: ScenarioConfig::new(memory_budget),
        }
    }

    /// The `sales_pipeline` workload over TinyTpcds at `scale` — the
    /// nine-MV join-hub pipeline used across the examples and
    /// integration tests.
    pub fn sales_pipeline(scale: f64, seed: u64, memory_budget: u64) -> Self {
        ScenarioSpec::new(
            "sales_pipeline",
            TableSpec::TinyTpcds { scale, seed },
            crate::engine_mvs::sales_pipeline(),
            memory_budget,
        )
    }

    /// Appends a churn round to the schedule.
    pub fn with_churn(mut self, round: ChurnRound) -> Self {
        self.churn.push(round);
        self
    }

    /// Overrides the lane count.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.config.lanes = lanes.max(1);
        self
    }

    /// Overrides the maintenance policy.
    pub fn with_refresh_mode(mut self, mode: RefreshMode) -> Self {
        self.config.refresh_mode = mode;
        self
    }

    /// Paces the engine's storage (and the sim's modeled disk) with
    /// `throttle`.
    pub fn with_throttle(mut self, throttle: Throttle) -> Self {
        self.config.throttle = Some(throttle);
        self
    }

    /// Compacts every MV after each `rounds`-th churn round (see
    /// [`ScenarioConfig::compact_every`]).
    pub fn with_compact_every(mut self, rounds: usize) -> Self {
        self.config.compact_every = Some(rounds.max(1));
        self
    }

    /// Toggles runtime feedback (see
    /// [`ScenarioConfig::runtime_feedback`]).
    pub fn with_runtime_feedback(mut self, enabled: bool) -> Self {
        self.config.runtime_feedback = enabled;
        self
    }

    /// Models a concurrent serving-tier read load of `bps` bytes/s (see
    /// [`ScenarioConfig::reader_read_bps`]). Typically measured from
    /// `sc-serve` throughput and fed back so simulated refreshes compete
    /// with real readers for the disk channel.
    pub fn with_reader_load(mut self, bps: f64) -> Self {
        self.config.reader_read_bps = bps.max(0.0);
        self
    }

    /// Whether the schedule calls for a compaction after (0-based) churn
    /// round `round` was refreshed.
    pub fn compact_due(&self, round: usize) -> bool {
        match self.config.compact_every {
            Some(n) => (round + 1).is_multiple_of(n),
            None => false,
        }
    }

    /// The engine-side refresh configuration this spec describes.
    pub fn refresh_config(&self) -> RefreshConfig {
        let mut rc = RefreshConfig::with_lanes(self.config.lanes)
            .with_refresh_mode(self.config.refresh_mode);
        if let Some(w) = self.config.run_ahead_window {
            rc = rc.with_run_ahead_window(w);
        }
        rc
    }

    /// The sim-side configuration this spec describes: same budget,
    /// lanes, window, and refresh mode; disk bandwidths from the spec's
    /// throttle when one is set (both sides then model the same device),
    /// the paper's measured disk otherwise.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper(self.config.memory_budget).with_lanes(self.config.lanes);
        if let Some(w) = self.config.run_ahead_window {
            cfg = cfg.with_run_ahead_window(w);
        }
        cfg = cfg.with_refresh_mode(self.config.refresh_mode);
        if let Some(t) = self.config.throttle {
            cfg.disk_read_bps = t.read_bps;
            cfg.disk_write_bps = t.write_bps;
            cfg.disk_latency_s = t.latency_s;
        }
        cfg.with_reader_load(self.config.reader_read_bps)
    }

    /// Generates the base tables into `disk`.
    pub fn load_tables(&self, disk: &DiskCatalog) -> sc_engine::Result<()> {
        self.tables.load_into(disk)
    }

    /// Applies churn round `round` (0-based index into
    /// [`ScenarioSpec::churn`]) against the catalogs.
    pub fn ingest_round(
        &self,
        round: usize,
        disk: &DiskCatalog,
        store: &DeltaStore,
    ) -> sc_engine::Result<()> {
        let r = self.churn.get(round).ok_or_else(|| {
            sc_engine::EngineError::InvalidPlan(format!(
                "scenario '{}' has {} churn rounds, round {round} requested",
                self.name,
                self.churn.len()
            ))
        })?;
        r.ingest_into(disk, store)
    }

    /// Mirrors this scenario's engine state into an annotated
    /// [`SimWorkload`]: `metrics` must come from a full profiling refresh
    /// of the spec's MVs on `disk`, and `store` holds the pending churn
    /// the next refresh will see. Combined with
    /// [`ScenarioSpec::sim_config`], this is the entire simulator rig —
    /// derived, not re-declared.
    pub fn mirror(
        &self,
        disk: &DiskCatalog,
        metrics: &RunMetrics,
        store: &DeltaStore,
    ) -> Result<SimWorkload, ScenarioError> {
        let churn = pending_churn(store);
        let w = mirror_workload(&self.mvs, metrics, disk, &churn)?;
        if churn.is_empty() {
            // An empty log means the session runs without delta tracking
            // (everything recomputes, so profiling runs stay meaningful);
            // strip the `Some(0)` skip annotations to predict the same.
            return Ok(SimWorkload {
                graph: w.graph.map(|_, n| {
                    let mut n = n.clone();
                    n.delta_bytes = None;
                    n
                }),
            });
        }
        Ok(w)
    }

    /// [`ScenarioSpec::mirror`] with runtime feedback: each mirrored node
    /// additionally carries `observations`' summary for its identity (MV
    /// name + plan-shape fingerprint), so the sim's `Auto` decisions
    /// consult the same observed costs the engine's controller does — the
    /// adaptive layer stays in parity by construction. Identities without
    /// observations mirror as `None` (static estimates), exactly like the
    /// engine's fingerprint-miss fallback.
    ///
    /// A sidecar naming an MV this spec does not declare is rejected with
    /// [`ScenarioError::StaleObservation`]: it was recorded against a
    /// different (or older) workload, and silently annotating nothing
    /// would let a mismatched sidecar pass for an empty one.
    pub fn mirror_observed(
        &self,
        disk: &DiskCatalog,
        metrics: &RunMetrics,
        store: &DeltaStore,
        observations: &ObservationStore,
    ) -> Result<SimWorkload, ScenarioError> {
        let known: HashSet<&str> = self.mvs.iter().map(|m| m.name.as_str()).collect();
        if let Some(unknown) = observations
            .names()
            .into_iter()
            .find(|n| !known.contains(n.as_str()))
        {
            return Err(ScenarioError::StaleObservation {
                scenario: self.name.clone(),
                mv: unknown,
            });
        }
        let w = self.mirror(disk, metrics, store)?;
        let fingerprints: HashMap<&str, u64> = self
            .mvs
            .iter()
            .map(|m| (m.name.as_str(), m.plan.fingerprint()))
            .collect();
        Ok(SimWorkload {
            graph: w.graph.map(|_, n| {
                let mut n = n.clone();
                n.observed_cost = fingerprints
                    .get(n.name.as_str())
                    .and_then(|&fp| observations.summary(&n.name, fp));
                n
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::Plan;
    use sc_dag::NodeId;
    use sc_engine::controller::Controller;
    use sc_engine::storage::MemoryCatalog;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::sales_pipeline(0.2, 42, 8 << 20).with_churn(ChurnRound::inserts(
            ["store_sales"],
            0.05,
            3,
        ))
    }

    #[test]
    fn loads_tables_and_replays_churn() {
        let s = spec();
        let dir = tempfile::tempdir().unwrap();
        let disk = DiskCatalog::open(dir.path()).unwrap();
        s.load_tables(&disk).unwrap();
        assert!(disk.contains("store_sales"));
        let before = disk.read_table("store_sales").unwrap().num_rows();

        let store = DeltaStore::new();
        s.ingest_round(0, &disk, &store).unwrap();
        assert!(!store.is_empty());
        let after = disk.read_table("store_sales").unwrap().num_rows();
        assert_eq!(after, before + (before as f64 * 0.05).round() as usize);
        // Out-of-range rounds error instead of silently doing nothing.
        assert!(s.ingest_round(1, &disk, &store).is_err());
    }

    #[test]
    fn compact_schedule_is_derived_from_the_toggle() {
        let s = spec();
        assert!(!s.compact_due(0) && !s.compact_due(1));
        let s = s.with_compact_every(2);
        assert!(!s.compact_due(0));
        assert!(s.compact_due(1));
        assert!(!s.compact_due(2));
        assert!(s.compact_due(3));
        // A zero interval clamps to 1 (compact after every round).
        let every = spec().with_compact_every(0);
        assert!(every.compact_due(0) && every.compact_due(1));
    }

    #[test]
    fn configs_are_derived_not_redeclared() {
        let s = spec()
            .with_lanes(4)
            .with_refresh_mode(RefreshMode::AlwaysIncremental)
            .with_throttle(Throttle {
                read_bps: 1e6,
                write_bps: 2e6,
                latency_s: 0.5,
            });
        let rc = s.refresh_config();
        assert_eq!(rc.lanes, 4);
        assert_eq!(rc.refresh_mode, RefreshMode::AlwaysIncremental);
        let sim = s.sim_config();
        assert_eq!(sim.lanes, 4);
        assert_eq!(sim.refresh_mode, RefreshMode::AlwaysIncremental);
        assert_eq!(sim.memory_budget, 8 << 20);
        assert_eq!(sim.disk_read_bps, 1e6);
        assert_eq!(sim.disk_write_bps, 2e6);
        assert_eq!(sim.disk_latency_s, 0.5);
    }

    #[test]
    fn reader_load_flows_into_the_sim_config() {
        // Quiet by default: the sim's reader contention stays off.
        assert_eq!(spec().sim_config().reader_read_bps, 0.0);
        // A measured serving-tier load lands on the sim's read channel,
        // and negatives clamp to quiet rather than adding bandwidth.
        let s = spec().with_reader_load(64e6);
        assert_eq!(s.config.reader_read_bps, 64e6);
        assert_eq!(s.sim_config().reader_read_bps, 64e6);
        assert_eq!(
            spec().with_reader_load(-1.0).sim_config().reader_read_bps,
            0.0
        );
    }

    #[test]
    fn table_names_cover_every_variant() {
        assert!(spec()
            .tables
            .table_names()
            .contains(&"store_sales".to_string()));
        let tpch = TableSpec::TpchShaped(crate::tpch_shaped::TpchSpec::default());
        assert!(tpch.table_names().contains(&"lineitem".to_string()));
        let inline = TableSpec::Inline(vec![InlineTable {
            name: "t".into(),
            columns: vec![("a".into(), sc_engine::DataType::Int64)],
            rows: vec![vec![sc_engine::Value::Int64(1)]],
        }]);
        assert_eq!(inline.table_names(), vec!["t".to_string()]);
        // Inline tables round-trip through storage.
        let dir = tempfile::tempdir().unwrap();
        let disk = DiskCatalog::open(dir.path()).unwrap();
        inline.load_into(&disk).unwrap();
        assert_eq!(disk.read_table("t").unwrap().num_rows(), 1);
    }

    #[test]
    fn mirror_observed_rejects_a_stale_sidecar() {
        let s = spec();
        let dir = tempfile::tempdir().unwrap();
        let disk = DiskCatalog::open(dir.path()).unwrap();
        s.load_tables(&disk).unwrap();
        let mem = MemoryCatalog::new(8 << 20);
        let plan = Plan::unoptimized((0..s.mvs.len()).map(NodeId).collect());
        let metrics = Controller::new(&disk, &mem).refresh(&s.mvs, &plan).unwrap();
        let store = DeltaStore::new();

        // A sidecar recorded against some other workload: its node names
        // don't exist in this spec, so mirroring must refuse it.
        let stale = ObservationStore::new();
        stale.record(
            "mv_from_another_life",
            7,
            sc_engine::storage::Observation {
                full: true,
                rows: 10,
                delta_bytes: 0,
                appended_bytes: 0,
                output_bytes: 100,
                read_s: 0.1,
                compute_s: 0.1,
                write_s: 0.1,
            },
        );
        match s.mirror_observed(&disk, &metrics, &store, &stale) {
            Err(crate::corpus::ScenarioError::StaleObservation { scenario, mv }) => {
                assert_eq!(scenario, "sales_pipeline");
                assert_eq!(mv, "mv_from_another_life");
            }
            other => panic!("expected StaleObservation, got {other:?}"),
        }
        // An empty sidecar (and one naming only spec MVs) is fine.
        assert!(s
            .mirror_observed(&disk, &metrics, &store, &ObservationStore::new())
            .is_ok());
    }

    #[test]
    fn mirror_matches_manual_mirror() {
        let s = spec();
        let dir = tempfile::tempdir().unwrap();
        let disk = DiskCatalog::open(dir.path()).unwrap();
        s.load_tables(&disk).unwrap();
        let mem = MemoryCatalog::new(8 << 20);
        let plan = Plan::unoptimized((0..s.mvs.len()).map(NodeId).collect());
        let metrics = Controller::new(&disk, &mem).refresh(&s.mvs, &plan).unwrap();
        let store = DeltaStore::new();
        s.ingest_round(0, &disk, &store).unwrap();

        let w = s.mirror(&disk, &metrics, &store).unwrap();
        assert_eq!(w.len(), s.mvs.len());
        let manual = mirror_workload(&s.mvs, &metrics, &disk, &pending_churn(&store)).unwrap();
        for (a, b) in w
            .graph
            .node_ids()
            .map(|v| w.graph.node(v))
            .zip(manual.graph.node_ids().map(|v| manual.graph.node(v)))
        {
            assert_eq!(a, b);
        }
    }
}
