//! The **scenario corpus**: a reviewable, file-based `.scn` format that
//! describes a complete differential test case — base tables, the MV DAG,
//! a churn schedule, the engine/sim configuration, and the expected
//! per-node refresh decisions — parsed into the same [`ScenarioSpec`]
//! every other consumer of the crate uses.
//!
//! Scenario construction used to live in Rust test code, which meant the
//! set of shapes under differential test only grew when someone wrote a
//! new test. The corpus flips that: adding coverage is writing a short
//! text file under `tests/corpus/`, and one sweep runner
//! (`tests/corpus_sweep.rs`) pushes every file through the full
//! differential battery. See `docs/CORPUS.md` for the format reference.
//!
//! Parsing is strict and the errors are typed ([`ScenarioError`]): a
//! malformed line, a duplicate MV, a dangling table/MV reference, or a
//! cyclic DAG each carry the offending file and line, so a broken corpus
//! file fails with a pointer into the text rather than a panic deep in
//! the engine.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::Path;

use sc_core::{ModeReason, NodeMode, RefreshMode};
use sc_engine::controller::MvDefinition;
use sc_engine::exec::{AggFunc, SortKey};
use sc_engine::plan::{AggExpr, LogicalPlan};
use sc_engine::{expr::Expr, DataType, Value};

use crate::scenario::{ChurnRound, InlineTable, ScenarioSpec, TableSpec};
use crate::tpch_shaped::TpchSpec;
use crate::updates::UpdateStreamSpec;

/// Typed scenario-corpus errors. Every parse-time variant carries the
/// offending file and (1-based) line so corpus failures point into the
/// text that caused them.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A line the grammar does not accept (with a human-readable reason).
    Parse {
        /// Corpus file.
        file: String,
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Two `mv` declarations share a name.
    DuplicateMv {
        /// Corpus file.
        file: String,
        /// Line of the *second* declaration.
        line: usize,
        /// The duplicated MV name.
        mv: String,
    },
    /// A construct references a table or MV that the scenario never
    /// declares.
    DanglingReference {
        /// Corpus file.
        file: String,
        /// Line of the referring construct.
        line: usize,
        /// What was referring (an MV name, `churn`, or `expect`).
        referrer: String,
        /// The name that does not resolve.
        target: String,
    },
    /// The MV declarations form a reference cycle, so no registration
    /// order exists.
    CyclicDag {
        /// Corpus file.
        file: String,
        /// Line of an MV on the cycle.
        line: usize,
        /// An MV on the cycle.
        mv: String,
    },
    /// An observation sidecar names an MV the scenario does not declare —
    /// the sidecar belongs to a different (or older) workload and must
    /// not silently annotate this one.
    StaleObservation {
        /// The scenario being mirrored.
        scenario: String,
        /// The unknown MV name found in the sidecar.
        mv: String,
    },
    /// A corpus file could not be read.
    Io {
        /// Path we tried to read.
        file: String,
        /// The underlying error, stringified.
        message: String,
    },
    /// An error from the DAG layer while mirroring a scenario into a
    /// simulator workload.
    Dag(sc_dag::DagError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse {
                file,
                line,
                message,
            } => write!(f, "{file}:{line}: {message}"),
            ScenarioError::DuplicateMv { file, line, mv } => {
                write!(f, "{file}:{line}: duplicate mv '{mv}'")
            }
            ScenarioError::DanglingReference {
                file,
                line,
                referrer,
                target,
            } => write!(
                f,
                "{file}:{line}: {referrer} references '{target}', which is not a declared table or earlier mv"
            ),
            ScenarioError::CyclicDag { file, line, mv } => {
                write!(f, "{file}:{line}: mv '{mv}' is part of a reference cycle")
            }
            ScenarioError::StaleObservation { scenario, mv } => write!(
                f,
                "observation sidecar names mv '{mv}', which scenario '{scenario}' does not declare (stale or foreign sidecar)"
            ),
            ScenarioError::Io { file, message } => write!(f, "{file}: {message}"),
            ScenarioError::Dag(e) => write!(f, "dag error while mirroring: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<sc_dag::DagError> for ScenarioError {
    fn from(e: sc_dag::DagError) -> Self {
        ScenarioError::Dag(e)
    }
}

/// One `expect` line: the refresh decision a corpus case pins for an MV.
#[derive(Debug, Clone, PartialEq)]
pub struct Expectation {
    /// The MV whose decision is pinned.
    pub mv: String,
    /// Expected mode after all churn rounds are ingested.
    pub mode: NodeMode,
    /// Expected provenance (`None` pins only the mode).
    pub reason: Option<ModeReason>,
    /// 1-based corpus line (for failure messages).
    pub line: usize,
}

/// A parsed corpus case: the scenario plus its pinned expectations.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Corpus file the case was parsed from.
    pub file: String,
    /// The scenario, ready for `ScSession::from_spec` / the simulator.
    pub spec: ScenarioSpec,
    /// Pinned per-MV refresh decisions (possibly empty).
    pub expectations: Vec<Expectation>,
}

/// Parses one `.scn` file.
pub fn load(path: impl AsRef<Path>) -> Result<CorpusCase, ScenarioError> {
    let path = path.as_ref();
    let file = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
        file: path.display().to_string(),
        message: e.to_string(),
    })?;
    parse_str(&text, &file)
}

/// Loads every `*.scn` file in `dir`, sorted by file name.
pub fn load_dir(dir: impl AsRef<Path>) -> Result<Vec<CorpusCase>, ScenarioError> {
    let dir = dir.as_ref();
    let entries = std::fs::read_dir(dir).map_err(|e| ScenarioError::Io {
        file: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .collect();
    paths.sort();
    paths.into_iter().map(load).collect()
}

/// Parses `.scn` text; `file` labels errors.
pub fn parse_str(text: &str, file: &str) -> Result<CorpusCase, ScenarioError> {
    Parser::new(text, file).parse()
}

struct Parser<'a> {
    file: &'a str,
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

/// An MV pending validation: its definition, corpus line, and the input
/// names its plan scans.
struct PendingMv {
    def: MvDefinition,
    line: usize,
    inputs: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str, file: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                // Strip comments outside string literals.
                let mut in_str = false;
                let mut end = l.len();
                for (idx, ch) in l.char_indices() {
                    match ch {
                        '\'' => in_str = !in_str,
                        '#' if !in_str => {
                            end = idx;
                            break;
                        }
                        _ => {}
                    }
                }
                (i + 1, l[..end].trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser {
            file,
            lines,
            pos: 0,
        }
    }

    fn err(&self, line: usize, message: impl Into<String>) -> ScenarioError {
        ScenarioError::Parse {
            file: self.file.to_string(),
            line,
            message: message.into(),
        }
    }

    fn parse(mut self) -> Result<CorpusCase, ScenarioError> {
        let mut name: Option<String> = None;
        let mut budget: u64 = 8 << 20;
        let mut lanes: usize = 1;
        let mut mode = RefreshMode::Auto;
        let mut compact_every: Option<usize> = None;
        let mut runtime_feedback = true;
        let mut tables: Option<TableSpec> = None;
        let mut inline: Vec<InlineTable> = Vec::new();
        let mut mvs: Vec<PendingMv> = Vec::new();
        let mut churn: Vec<(usize, ChurnRound)> = Vec::new();
        let mut expectations: Vec<Expectation> = Vec::new();

        while self.pos < self.lines.len() {
            let (ln, line) = self.lines[self.pos];
            self.pos += 1;
            let (keyword, rest) = split_keyword(line);
            match keyword {
                "scenario" => name = Some(self.ident(ln, rest, "scenario name")?),
                "budget" => {
                    budget = rest
                        .trim()
                        .parse()
                        .map_err(|_| self.err(ln, format!("invalid budget '{}'", rest.trim())))?
                }
                "lanes" => {
                    lanes = rest.trim().parse().map_err(|_| {
                        self.err(ln, format!("invalid lane count '{}'", rest.trim()))
                    })?
                }
                "mode" => {
                    mode = match rest.trim() {
                        "auto" => RefreshMode::Auto,
                        "always_full" => RefreshMode::AlwaysFull,
                        "always_incremental" => RefreshMode::AlwaysIncremental,
                        other => {
                            return Err(self.err(
                                ln,
                                format!(
                                "unknown mode '{other}' (auto | always_full | always_incremental)"
                            ),
                            ))
                        }
                    }
                }
                "compact_every" => {
                    compact_every = Some(rest.trim().parse().map_err(|_| {
                        self.err(ln, format!("invalid compact interval '{}'", rest.trim()))
                    })?)
                }
                "runtime_feedback" => {
                    runtime_feedback = match rest.trim() {
                        "on" => true,
                        "off" => false,
                        other => {
                            return Err(self.err(
                                ln,
                                format!("runtime_feedback must be on|off, got '{other}'"),
                            ))
                        }
                    }
                }
                "tables" => {
                    if tables.is_some() || !inline.is_empty() {
                        return Err(self.err(ln, "tables declared twice"));
                    }
                    tables = Some(self.parse_tables(ln, rest)?);
                }
                "table" => {
                    if tables.is_some() {
                        return Err(self.err(ln, "inline tables cannot mix with a generator"));
                    }
                    inline.push(self.parse_inline_table(ln, rest)?);
                }
                "mv" => mvs.push(self.parse_mv(ln, rest)?),
                "churn" => churn.push((ln, self.parse_churn(ln, rest)?)),
                "expect" => expectations.push(self.parse_expect(ln, rest)?),
                other => {
                    return Err(self.err(ln, format!("unknown directive '{other}'")));
                }
            }
        }

        let name = name.ok_or_else(|| self.err(1, "missing 'scenario <name>' directive"))?;
        let tables = match tables {
            Some(t) => t,
            None if !inline.is_empty() => TableSpec::Inline(inline),
            None => return Err(self.err(1, "no tables declared ('tables …' or 'table …')")),
        };

        self.validate(&tables, &mvs, &churn, &expectations)?;

        let mut spec = ScenarioSpec::new(
            name,
            tables,
            mvs.into_iter().map(|m| m.def).collect(),
            budget,
        )
        .with_lanes(lanes)
        .with_refresh_mode(mode)
        .with_runtime_feedback(runtime_feedback);
        if let Some(n) = compact_every {
            spec = spec.with_compact_every(n);
        }
        for (_, round) in churn {
            spec = spec.with_churn(round);
        }
        Ok(CorpusCase {
            file: self.file.to_string(),
            spec,
            expectations,
        })
    }

    /// Structural validation with corpus-line provenance: duplicate MVs,
    /// name collisions, cyclic or dangling references, churn against
    /// unknown tables, expectations against unknown MVs.
    fn validate(
        &self,
        tables: &TableSpec,
        mvs: &[PendingMv],
        churn: &[(usize, ChurnRound)],
        expectations: &[Expectation],
    ) -> Result<(), ScenarioError> {
        let base: HashSet<String> = tables.table_names().into_iter().collect();
        let mv_lines: HashMap<&str, usize> =
            mvs.iter().map(|m| (m.def.name.as_str(), m.line)).collect();

        let mut seen: HashSet<&str> = HashSet::new();
        for m in mvs {
            if !seen.insert(&m.def.name) {
                return Err(ScenarioError::DuplicateMv {
                    file: self.file.to_string(),
                    line: m.line,
                    mv: m.def.name.clone(),
                });
            }
            if base.contains(&m.def.name) {
                return Err(self.err(
                    m.line,
                    format!("mv '{}' collides with a base table name", m.def.name),
                ));
            }
        }

        // Cycle detection over MV-to-MV references (base tables can't be
        // on a cycle). Iterative DFS with tri-state marks.
        let index: HashMap<&str, usize> = mvs
            .iter()
            .enumerate()
            .map(|(i, m)| (m.def.name.as_str(), i))
            .collect();
        let mut mark = vec![0u8; mvs.len()]; // 0 unvisited, 1 on stack, 2 done
        for start in 0..mvs.len() {
            if mark[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            mark[start] = 1;
            while let Some(&(node, edge)) = stack.last() {
                let refs: Vec<usize> = mvs[node]
                    .inputs
                    .iter()
                    .filter_map(|i| index.get(i.as_str()).copied())
                    .collect();
                if edge < refs.len() {
                    let next = refs[edge];
                    stack.last_mut().expect("non-empty stack").1 += 1;
                    match mark[next] {
                        0 => {
                            mark[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => {
                            return Err(ScenarioError::CyclicDag {
                                file: self.file.to_string(),
                                line: mvs[next].line,
                                mv: mvs[next].def.name.clone(),
                            });
                        }
                        _ => {}
                    }
                } else {
                    mark[node] = 2;
                    stack.pop();
                }
            }
        }

        // Reference resolution: each MV may read base tables and earlier
        // MVs. A known-but-later MV (acyclic, since cycles were caught
        // above) is an ordering mistake; an unknown name is dangling.
        let mut defined: HashSet<&str> = HashSet::new();
        for m in mvs {
            for input in &m.inputs {
                if base.contains(input) || defined.contains(input.as_str()) {
                    continue;
                }
                if let Some(&later) = mv_lines.get(input.as_str()) {
                    return Err(self.err(
                        m.line,
                        format!(
                            "mv '{}' references mv '{input}' before it is defined (line {later})",
                            m.def.name
                        ),
                    ));
                }
                return Err(ScenarioError::DanglingReference {
                    file: self.file.to_string(),
                    line: m.line,
                    referrer: format!("mv '{}'", m.def.name),
                    target: input.clone(),
                });
            }
            defined.insert(&m.def.name);
        }

        for (ln, round) in churn {
            for t in &round.tables {
                if !base.contains(t) {
                    return Err(ScenarioError::DanglingReference {
                        file: self.file.to_string(),
                        line: *ln,
                        referrer: "churn".to_string(),
                        target: t.clone(),
                    });
                }
            }
        }
        for e in expectations {
            if !mv_lines.contains_key(e.mv.as_str()) {
                return Err(ScenarioError::DanglingReference {
                    file: self.file.to_string(),
                    line: e.line,
                    referrer: "expect".to_string(),
                    target: e.mv.clone(),
                });
            }
        }
        Ok(())
    }

    fn ident(&self, ln: usize, s: &str, what: &str) -> Result<String, ScenarioError> {
        let s = s.trim();
        if s.is_empty() || !s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(self.err(ln, format!("invalid {what} '{s}'")));
        }
        Ok(s.to_string())
    }

    fn parse_tables(&self, ln: usize, rest: &str) -> Result<TableSpec, ScenarioError> {
        let mut toks = rest.split_whitespace();
        match toks.next() {
            Some("tinytpcds") => {
                let kv = self.key_values(ln, toks)?;
                Ok(TableSpec::TinyTpcds {
                    scale: self.kv_f64(ln, &kv, "scale")?,
                    seed: self.kv_u64(ln, &kv, "seed")?,
                })
            }
            Some("tpch") => {
                let mut snowflake = false;
                let args: Vec<&str> = toks
                    .filter(|t| {
                        if *t == "snowflake" {
                            snowflake = true;
                            false
                        } else {
                            true
                        }
                    })
                    .collect();
                let kv = self.key_values(ln, args.into_iter())?;
                Ok(TableSpec::TpchShaped(TpchSpec {
                    seed: self.kv_u64(ln, &kv, "seed")?,
                    fact_rows: self.kv_u64(ln, &kv, "fact")? as usize,
                    parts: self.kv_u64(ln, &kv, "parts")? as usize,
                    suppliers: self.kv_u64(ln, &kv, "suppliers")? as usize,
                    customers: self.kv_u64(ln, &kv, "customers")? as usize,
                    orders: self.kv_u64(ln, &kv, "orders")? as usize,
                    zipf: self.kv_f64(ln, &kv, "zipf")?,
                    snowflake,
                }))
            }
            other => Err(self.err(
                ln,
                format!("unknown table generator {other:?} (tinytpcds | tpch)"),
            )),
        }
    }

    fn key_values<'b>(
        &self,
        ln: usize,
        toks: impl Iterator<Item = &'b str>,
    ) -> Result<HashMap<&'b str, &'b str>, ScenarioError> {
        let mut kv = HashMap::new();
        for t in toks {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| self.err(ln, format!("expected key=value, got '{t}'")))?;
            kv.insert(k, v);
        }
        Ok(kv)
    }

    fn kv_u64(&self, ln: usize, kv: &HashMap<&str, &str>, key: &str) -> Result<u64, ScenarioError> {
        kv.get(key)
            .ok_or_else(|| self.err(ln, format!("missing {key}=…")))?
            .parse()
            .map_err(|_| self.err(ln, format!("invalid integer for {key}")))
    }

    fn kv_f64(&self, ln: usize, kv: &HashMap<&str, &str>, key: &str) -> Result<f64, ScenarioError> {
        kv.get(key)
            .ok_or_else(|| self.err(ln, format!("missing {key}=…")))?
            .parse()
            .map_err(|_| self.err(ln, format!("invalid number for {key}")))
    }

    /// `table <name> (col:type, …)` followed by `row <v> …` lines.
    fn parse_inline_table(&mut self, ln: usize, rest: &str) -> Result<InlineTable, ScenarioError> {
        let rest = rest.trim();
        let open = rest
            .find('(')
            .ok_or_else(|| self.err(ln, "expected 'table <name> (col:type, …)'"))?;
        let name = self.ident(ln, &rest[..open], "table name")?;
        let close = rest
            .rfind(')')
            .ok_or_else(|| self.err(ln, "unclosed column list"))?;
        let mut columns = Vec::new();
        for item in rest[open + 1..close].split(',') {
            let (col, ty) = item
                .trim()
                .split_once(':')
                .ok_or_else(|| self.err(ln, format!("expected col:type, got '{}'", item.trim())))?;
            let dtype = match ty.trim() {
                "int" => DataType::Int64,
                "float" => DataType::Float64,
                "str" => DataType::Utf8,
                "bool" => DataType::Bool,
                "date" => DataType::Date,
                other => {
                    return Err(self.err(
                        ln,
                        format!("unknown type '{other}' (int | float | str | bool | date)"),
                    ))
                }
            };
            columns.push((col.trim().to_string(), dtype));
        }
        if columns.is_empty() {
            return Err(self.err(ln, "table needs at least one column"));
        }
        let mut rows = Vec::new();
        while self.pos < self.lines.len() {
            let (rln, line) = self.lines[self.pos];
            let (kw, vals) = split_keyword(line);
            if kw != "row" {
                break;
            }
            self.pos += 1;
            let toks = tokenize_values(vals).map_err(|m| self.err(rln, m))?;
            if toks.len() != columns.len() {
                return Err(self.err(
                    rln,
                    format!(
                        "row has {} values, table has {} columns",
                        toks.len(),
                        columns.len()
                    ),
                ));
            }
            let row: Result<Vec<Value>, ScenarioError> = toks
                .iter()
                .zip(&columns)
                .map(|(tok, (col, dtype))| {
                    self.typed_value(rln, tok, *dtype)
                        .map_err(|m| self.err(rln, format!("column '{col}': {m}")))
                })
                .collect();
            rows.push(row?);
        }
        Ok(InlineTable {
            name,
            columns,
            rows,
        })
    }

    fn typed_value(&self, _ln: usize, tok: &Tok, dtype: DataType) -> Result<Value, String> {
        match (dtype, tok) {
            (DataType::Utf8, Tok::Str(s)) => Ok(Value::Utf8(s.clone())),
            (DataType::Int64, Tok::Word(w)) => w
                .parse()
                .map(Value::Int64)
                .map_err(|_| format!("invalid int '{w}'")),
            (DataType::Float64, Tok::Word(w)) => w
                .parse()
                .map(Value::Float64)
                .map_err(|_| format!("invalid float '{w}'")),
            (DataType::Bool, Tok::Word(w)) => match w.as_str() {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                _ => Err(format!("invalid bool '{w}'")),
            },
            (DataType::Date, Tok::Word(w)) => w
                .parse()
                .map(Value::Date)
                .map_err(|_| format!("invalid date (days since epoch) '{w}'")),
            (dt, Tok::Str(s)) => Err(format!("'{s}' is a string, column is {dt}")),
            (DataType::Utf8, Tok::Word(w)) => Err(format!("string values need quotes: '{w}'")),
        }
    }

    /// `mv <name> = <table> | op | op …`
    fn parse_mv(&self, ln: usize, rest: &str) -> Result<PendingMv, ScenarioError> {
        let (name, pipeline) = rest
            .split_once('=')
            .ok_or_else(|| self.err(ln, "expected 'mv <name> = <pipeline>'"))?;
        let name = self.ident(ln, name, "mv name")?;
        let mut stages = pipeline.split('|');
        let source = stages
            .next()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| self.err(ln, "pipeline needs a source table"))?;
        let mut plan = LogicalPlan::scan(self.ident(ln, source, "source table")?);
        for stage in stages {
            plan = self.parse_op(ln, plan, stage.trim())?;
        }
        let inputs = plan.input_tables();
        Ok(PendingMv {
            def: MvDefinition::new(name, plan),
            line: ln,
            inputs,
        })
    }

    fn parse_op(
        &self,
        ln: usize,
        input: LogicalPlan,
        stage: &str,
    ) -> Result<LogicalPlan, ScenarioError> {
        let (op, rest) = split_keyword(stage);
        match op {
            "filter" => {
                let toks = tokenize_values(rest).map_err(|m| self.err(ln, m))?;
                if toks.len() != 3 {
                    return Err(self.err(
                        ln,
                        format!("filter wants '<col> <cmp> <lit>', got '{stage}'"),
                    ));
                }
                let col = Expr::col(toks[0].word(|| self.err(ln, "filter column"))?);
                let lit = Expr::lit(self.literal(ln, &toks[2])?);
                let pred = match toks[1].word(|| self.err(ln, "filter comparator"))?.as_str() {
                    ">" => col.gt(lit),
                    "<" => col.lt(lit),
                    ">=" => col.ge(lit),
                    "<=" => col.le(lit),
                    "==" => col.eq(lit),
                    "!=" => col.ne(lit),
                    other => return Err(self.err(ln, format!("unknown comparator '{other}'"))),
                };
                Ok(input.filter(pred))
            }
            "project" => {
                let mut exprs = Vec::new();
                for item in rest.split(',') {
                    exprs.push(self.parse_projection(ln, item.trim())?);
                }
                if exprs.is_empty() {
                    return Err(self.err(ln, "project needs at least one column"));
                }
                Ok(input.project(exprs))
            }
            "join" | "leftjoin" => {
                let (table, on) = rest
                    .split_once(" on ")
                    .map(|(t, o)| (t.trim(), o.trim()))
                    .ok_or_else(|| self.err(ln, format!("{op} wants '<table> on a=b[,c=d]'")))?;
                let table = self.ident(ln, table, "join table")?;
                let mut keys = Vec::new();
                for pair in on.split(',') {
                    let (l, r) = pair.trim().split_once('=').ok_or_else(|| {
                        self.err(ln, format!("join key '{}' is not a=b", pair.trim()))
                    })?;
                    keys.push((l.trim().to_string(), r.trim().to_string()));
                }
                let right = LogicalPlan::scan(table);
                Ok(if op == "join" {
                    input.join(right, keys)
                } else {
                    input.left_join(right, keys)
                })
            }
            "agg" => {
                let rest = rest.trim();
                let (group_by, aggs_text) = if let Some(after) = rest.strip_prefix("by ") {
                    let (cols, aggs) = after.split_once(' ').ok_or_else(|| {
                        self.err(ln, "agg wants 'by g1[,g2] <func> <col> as <alias>'")
                    })?;
                    (
                        cols.split(',').map(|c| c.trim().to_string()).collect(),
                        aggs,
                    )
                } else {
                    (Vec::new(), rest)
                };
                let mut aggs = Vec::new();
                for item in aggs_text.split(',') {
                    let toks: Vec<&str> = item.split_whitespace().collect();
                    let [func, col, kw_as, alias] = toks[..] else {
                        return Err(self.err(
                            ln,
                            format!(
                                "aggregate '{}' is not '<func> <col> as <alias>'",
                                item.trim()
                            ),
                        ));
                    };
                    if kw_as != "as" {
                        return Err(
                            self.err(ln, format!("expected 'as' in aggregate '{}'", item.trim()))
                        );
                    }
                    let func = match func {
                        "sum" => AggFunc::Sum,
                        "count" => AggFunc::Count,
                        "min" => AggFunc::Min,
                        "max" => AggFunc::Max,
                        "avg" => AggFunc::Avg,
                        other => return Err(self.err(ln, format!("unknown aggregate '{other}'"))),
                    };
                    aggs.push(AggExpr::new(func, col, alias));
                }
                if aggs.is_empty() {
                    return Err(self.err(ln, "agg needs at least one aggregate"));
                }
                Ok(input.aggregate(group_by, aggs))
            }
            "distinct" => {
                if !rest.trim().is_empty() {
                    return Err(self.err(ln, "distinct takes no arguments"));
                }
                Ok(input.distinct())
            }
            "topk" => {
                let (n, keys) = rest
                    .trim()
                    .split_once(" by ")
                    .ok_or_else(|| self.err(ln, "topk wants '<n> by <col> [desc]'"))?;
                let n: usize = n
                    .trim()
                    .parse()
                    .map_err(|_| self.err(ln, format!("invalid topk count '{}'", n.trim())))?;
                Ok(input.top_k(self.sort_keys(ln, keys)?, n))
            }
            "sort" => Ok(input.sort(self.sort_keys(ln, rest)?)),
            "limit" => {
                let n: usize = rest
                    .trim()
                    .parse()
                    .map_err(|_| self.err(ln, format!("invalid limit '{}'", rest.trim())))?;
                Ok(input.limit(n))
            }
            "union" => {
                let table = self.ident(ln, rest, "union table")?;
                Ok(input.union(LogicalPlan::scan(table)))
            }
            other => Err(self.err(ln, format!("unknown operator '{other}'"))),
        }
    }

    /// `<col>`, `<col> as <alias>`, or `<col|lit> <+-*/> <col|lit> as <alias>`.
    fn parse_projection(&self, ln: usize, item: &str) -> Result<(Expr, String), ScenarioError> {
        let toks = tokenize_values(item).map_err(|m| self.err(ln, m))?;
        let operand = |t: &Tok| -> Result<Expr, ScenarioError> {
            match t {
                Tok::Str(s) => Ok(Expr::lit(s.as_str())),
                Tok::Word(w) => {
                    if w.parse::<i64>().is_ok() || w.parse::<f64>().is_ok() {
                        Ok(Expr::lit(self.literal(ln, t)?))
                    } else {
                        Ok(Expr::col(w.as_str()))
                    }
                }
            }
        };
        match &toks[..] {
            [Tok::Word(col)] => Ok((Expr::col(col.as_str()), col.clone())),
            [Tok::Word(col), Tok::Word(kw), Tok::Word(alias)] if kw == "as" => {
                Ok((Expr::col(col.as_str()), alias.clone()))
            }
            [a, Tok::Word(op), b, Tok::Word(kw), Tok::Word(alias)] if kw == "as" => {
                let (l, r) = (operand(a)?, operand(b)?);
                let e = match op.as_str() {
                    "+" => l.add(r),
                    "-" => l.sub(r),
                    "*" => l.mul(r),
                    "/" => l.div(r),
                    other => return Err(self.err(ln, format!("unknown arithmetic op '{other}'"))),
                };
                Ok((e, alias.clone()))
            }
            _ => Err(self.err(
                ln,
                format!("projection '{item}' is not '<col>', '<col> as <alias>' or '<a> <op> <b> as <alias>'"),
            )),
        }
    }

    fn sort_keys(&self, ln: usize, text: &str) -> Result<Vec<SortKey>, ScenarioError> {
        let mut keys = Vec::new();
        for item in text.split(',') {
            let toks: Vec<&str> = item.split_whitespace().collect();
            match toks[..] {
                [col] => keys.push(SortKey::asc(col)),
                [col, "asc"] => keys.push(SortKey::asc(col)),
                [col, "desc"] => keys.push(SortKey::desc(col)),
                _ => {
                    return Err(self.err(
                        ln,
                        format!("sort key '{}' is not '<col> [asc|desc]'", item.trim()),
                    ))
                }
            }
        }
        if keys.is_empty() {
            return Err(self.err(ln, "need at least one sort key"));
        }
        Ok(keys)
    }

    /// `churn <t1[,t2]> inserts <frac> seed <n>` or
    /// `churn <t1[,t2]> mix <i> <u> <d> seed <n>`.
    fn parse_churn(&self, ln: usize, rest: &str) -> Result<ChurnRound, ScenarioError> {
        let toks: Vec<&str> = rest.split_whitespace().collect();
        let usage =
            "churn wants '<tables> inserts <frac> seed <n>' or '<tables> mix <i> <u> <d> seed <n>'";
        let (tables, shape) = toks.split_first().ok_or_else(|| self.err(ln, usage))?;
        let tables: Vec<String> = tables.split(',').map(|t| t.trim().to_string()).collect();
        let frac = |s: &str| -> Result<f64, ScenarioError> {
            s.parse()
                .map_err(|_| self.err(ln, format!("invalid fraction '{s}'")))
        };
        let (stream, seed_toks) = match shape {
            ["inserts", f, rest @ ..] => (UpdateStreamSpec::inserts(frac(f)?), rest),
            ["mix", i, u, d, rest @ ..] => {
                (UpdateStreamSpec::mixed(frac(i)?, frac(u)?, frac(d)?), rest)
            }
            _ => return Err(self.err(ln, usage)),
        };
        let ["seed", seed] = seed_toks else {
            return Err(self.err(ln, usage));
        };
        let seed = seed
            .parse()
            .map_err(|_| self.err(ln, format!("invalid seed '{seed}'")))?;
        Ok(ChurnRound {
            tables,
            stream,
            seed,
        })
    }

    /// `expect <mv> <full|incremental|skipped> [<reason>]`
    fn parse_expect(&self, ln: usize, rest: &str) -> Result<Expectation, ScenarioError> {
        let toks: Vec<&str> = rest.split_whitespace().collect();
        let (mv, mode, reason) = match toks[..] {
            [mv, mode] => (mv, mode, None),
            [mv, mode, reason] => (mv, mode, Some(reason)),
            _ => {
                return Err(self.err(
                    ln,
                    "expect wants '<mv> <full|incremental|skipped> [<reason>]'",
                ))
            }
        };
        let mode = match mode {
            "full" => NodeMode::Full,
            "incremental" => NodeMode::Incremental,
            "skipped" => NodeMode::Skipped,
            other => return Err(self.err(ln, format!("unknown mode '{other}'"))),
        };
        let reason = reason
            .map(|r| {
                Ok(match r {
                    "full_policy" => ModeReason::FullPolicy,
                    "first_materialization" => ModeReason::FirstMaterialization,
                    "poisoned_log" => ModeReason::PoisonedLog,
                    "parent_recomputed" => ModeReason::ParentRecomputed,
                    "static_churn" => ModeReason::StaticChurn,
                    "unsupported_shape" => ModeReason::UnsupportedShape,
                    "cost_model" => ModeReason::CostModel,
                    "no_churn" => ModeReason::NoChurn,
                    "delta_applied" => ModeReason::DeltaApplied,
                    other => return Err(self.err(ln, format!("unknown reason '{other}'"))),
                })
            })
            .transpose()?;
        Ok(Expectation {
            mv: mv.to_string(),
            mode,
            reason,
            line: ln,
        })
    }

    fn literal(&self, ln: usize, tok: &Tok) -> Result<Value, ScenarioError> {
        match tok {
            Tok::Str(s) => Ok(Value::Utf8(s.clone())),
            Tok::Word(w) => {
                if let Ok(i) = w.parse::<i64>() {
                    Ok(Value::Int64(i))
                } else if let Ok(f) = w.parse::<f64>() {
                    Ok(Value::Float64(f))
                } else if w == "true" {
                    Ok(Value::Bool(true))
                } else if w == "false" {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err(ln, format!("invalid literal '{w}'")))
                }
            }
        }
    }
}

fn split_keyword(line: &str) -> (&str, &str) {
    match line.split_once(char::is_whitespace) {
        Some((k, rest)) => (k, rest),
        None => (line, ""),
    }
}

/// A whitespace-separated token: a bare word or a `'quoted string'`.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Str(String),
}

impl Tok {
    fn word(&self, err: impl FnOnce() -> ScenarioError) -> Result<String, ScenarioError> {
        match self {
            Tok::Word(w) => Ok(w.clone()),
            Tok::Str(_) => Err(err()),
        }
    }
}

/// Splits on whitespace, keeping `'single-quoted strings'` (which may
/// contain spaces) as single tokens.
fn tokenize_values(text: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '\'' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('\'') => break,
                    Some(ch) => s.push(ch),
                    None => return Err(format!("unterminated string in '{text}'")),
                }
            }
            out.push(Tok::Str(s));
        } else {
            let mut w = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() || ch == '\'' {
                    break;
                }
                w.push(ch);
                chars.next();
            }
            out.push(Tok::Word(w));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# A miniature but complete case.
scenario tiny
budget 1048576
lanes 2
mode always_incremental
compact_every 2
runtime_feedback off

table items (id:int, label:str, price:float, live:bool, added:date)
row 1 'alpha beta' 9.5 true 19000
row 2 'gamma' 3.25 false 19001

mv cheap = items | filter price < 5.0
mv labels = cheap | project label, price * 2 as doubled | distinct
mv ranked = items | topk 1 by price desc

churn items inserts 0.5 seed 9
expect cheap incremental delta_applied
expect ranked full unsupported_shape
";

    #[test]
    fn parses_a_complete_case() {
        let case = parse_str(GOOD, "good.scn").unwrap();
        assert_eq!(case.spec.name, "tiny");
        assert_eq!(case.spec.config.memory_budget, 1 << 20);
        assert_eq!(case.spec.config.lanes, 2);
        assert_eq!(
            case.spec.config.refresh_mode,
            RefreshMode::AlwaysIncremental
        );
        assert_eq!(case.spec.config.compact_every, Some(2));
        assert!(!case.spec.config.runtime_feedback);
        assert_eq!(case.spec.mvs.len(), 3);
        assert_eq!(case.spec.churn.len(), 1);
        assert_eq!(case.expectations.len(), 2);
        assert_eq!(
            case.expectations[1].reason,
            Some(ModeReason::UnsupportedShape)
        );
        let TableSpec::Inline(tables) = &case.spec.tables else {
            panic!("expected inline tables");
        };
        assert_eq!(tables[0].rows.len(), 2);
        assert_eq!(tables[0].rows[0][1], Value::Utf8("alpha beta".into()));
    }

    #[test]
    fn inline_tables_build_and_execute() {
        let case = parse_str(GOOD, "good.scn").unwrap();
        let dir = tempfile::tempdir().unwrap();
        let disk = sc_engine::storage::DiskCatalog::open(dir.path()).unwrap();
        case.spec.load_tables(&disk).unwrap();
        let t = disk.read_table("items").unwrap();
        assert_eq!(t.num_rows(), 2);
        // The parsed plans run: `cheap` keeps the one row under 5.0.
        let source: std::collections::HashMap<String, std::sync::Arc<sc_engine::Table>> =
            [("items".to_string(), std::sync::Arc::new(t))].into();
        let out = case.spec.mvs[0].plan.execute(&source).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn duplicate_mv_is_typed_with_position() {
        let text =
            "scenario s\ntable t (a:int)\nrow 1\nmv m = t | filter a > 0\nmv m = t | distinct\n";
        match parse_str(text, "dup.scn") {
            Err(ScenarioError::DuplicateMv { file, line, mv }) => {
                assert_eq!((file.as_str(), line, mv.as_str()), ("dup.scn", 5, "m"));
            }
            other => panic!("expected DuplicateMv, got {other:?}"),
        }
    }

    #[test]
    fn dangling_references_are_typed_with_position() {
        let text = "scenario s\ntable t (a:int)\nrow 1\nmv m = ghost | distinct\n";
        match parse_str(text, "dangle.scn") {
            Err(ScenarioError::DanglingReference { line, target, .. }) => {
                assert_eq!((line, target.as_str()), (4, "ghost"));
            }
            other => panic!("expected DanglingReference, got {other:?}"),
        }
        let churn = "scenario s\ntable t (a:int)\nrow 1\nchurn ghost inserts 0.1 seed 1\n";
        assert!(matches!(
            parse_str(churn, "c.scn"),
            Err(ScenarioError::DanglingReference { line: 4, .. })
        ));
        let expect = "scenario s\ntable t (a:int)\nrow 1\nmv m = t | distinct\nexpect ghost full\n";
        assert!(matches!(
            parse_str(expect, "e.scn"),
            Err(ScenarioError::DanglingReference { line: 5, .. })
        ));
    }

    #[test]
    fn cyclic_dag_is_typed() {
        let text = "scenario s\ntable t (a:int)\nrow 1\nmv a = b | distinct\nmv b = a | distinct\n";
        match parse_str(text, "cycle.scn") {
            Err(ScenarioError::CyclicDag { file, mv, .. }) => {
                assert_eq!(file, "cycle.scn");
                assert!(mv == "a" || mv == "b");
            }
            other => panic!("expected CyclicDag, got {other:?}"),
        }
    }

    #[test]
    fn forward_reference_is_an_ordering_error_not_a_cycle() {
        let text = "scenario s\ntable t (a:int)\nrow 1\nmv m = later | distinct\nmv later = t | distinct\n";
        match parse_str(text, "fwd.scn") {
            Err(ScenarioError::Parse { line, message, .. }) => {
                assert_eq!(line, 4);
                assert!(message.contains("before it is defined"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_never_panic() {
        for bad in [
            "scenario s\ntables nosuch scale=1 seed=1\n",
            "scenario s\ntable t (a:int)\nrow 1 2\n",
            "scenario s\ntable t (a:int)\nrow x\n",
            "scenario s\ntable t (a:wat)\n",
            "scenario s\ntable t (a:int)\nrow 1\nmv m = t | frobnicate\n",
            "scenario s\ntable t (a:int)\nrow 1\nmv m = t | filter a ~ 3\n",
            "scenario s\ntable t (a:int)\nrow 1\nmv m = t | join x\n",
            "scenario s\ntable t (a:int)\nrow 1\nmv m = t | agg sum a\n",
            "scenario s\ntable t (a:int)\nrow 1\nmv m = t | topk q by a\n",
            "scenario s\ntable t (a:int)\nrow 1\nchurn t inserts lots seed 1\n",
            "scenario s\ntable t (a:int)\nrow 1\nmv m = t | distinct\nexpect m sideways\n",
            "scenario s\ntable t (a:int)\nrow 1\nmv m = t | distinct\nexpect m full because\n",
            "scenario s\nmode sometimes\n",
            "table t (a:int)\nrow 1\n", // missing scenario name
            "scenario s\n",             // no tables at all
            "scenario s\nmv m = t | distinct\n",
            "scenario s\ntable t (a:str)\nrow 'unterminated\n",
        ] {
            match parse_str(bad, "bad.scn") {
                Err(_) => {}
                Ok(_) => panic!("accepted malformed input: {bad:?}"),
            }
        }
    }

    #[test]
    fn mv_colliding_with_base_table_is_rejected() {
        let text = "scenario s\ntable t (a:int)\nrow 1\nmv t = t | distinct\n";
        assert!(matches!(
            parse_str(text, "x.scn"),
            Err(ScenarioError::Parse { line: 4, .. })
        ));
    }

    #[test]
    fn comments_and_strings_coexist() {
        let text = "scenario s # trailing comment\ntable t (a:int, s:str)\nrow 1 'has # hash' # comment\nmv m = t | filter s == 'x # y'\n";
        let case = parse_str(text, "c.scn").unwrap();
        let TableSpec::Inline(tables) = &case.spec.tables else {
            panic!()
        };
        assert_eq!(tables[0].rows[0][1], Value::Utf8("has # hash".into()));
    }

    #[test]
    fn generator_table_lines_parse() {
        let tiny = "scenario s\ntables tinytpcds scale=0.1 seed=7\nmv m = store_sales | limit 3\n";
        let case = parse_str(tiny, "t.scn").unwrap();
        assert_eq!(
            case.spec.tables,
            TableSpec::TinyTpcds {
                scale: 0.1,
                seed: 7
            }
        );
        let tpch = "scenario s\ntables tpch seed=3 fact=100 parts=5 suppliers=4 customers=6 orders=10 zipf=1.2 snowflake\nmv m = lineitem | limit 3\n";
        let case = parse_str(tpch, "t.scn").unwrap();
        let TableSpec::TpchShaped(spec) = &case.spec.tables else {
            panic!("expected tpch tables");
        };
        assert!(spec.snowflake);
        assert_eq!(spec.fact_rows, 100);
        // Referencing a table the generator doesn't produce dangles.
        let bad = "scenario s\ntables tpch seed=3 fact=100 parts=5 suppliers=4 customers=6 orders=10 zipf=1.2\nmv m = store_sales | limit 3\n";
        assert!(matches!(
            parse_str(bad, "t.scn"),
            Err(ScenarioError::DanglingReference { .. })
        ));
    }

    #[test]
    fn errors_render_file_and_line() {
        let e = parse_str("scenario s\nwat is this\n", "f.scn").unwrap_err();
        assert!(e.to_string().starts_with("f.scn:2:"), "{e}");
    }
}
