//! Seeded generators for TPC-DS-style base tables, small enough to execute
//! on `sc-engine` (the laptop-scale stand-in for the paper's 10 GB–1 TB
//! datasets; the large-scale sweeps use `sc-sim` instead).
//!
//! Schemas are simplified but keep the join keys and measures the
//! workloads need: the three sales fact tables share the
//! `(item_sk, customer_sk, date_sk, store_sk)` foreign keys into the
//! dimension tables.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sc_engine::{DataType, Table, TableBuilder, Value};

/// A generated miniature TPC-DS dataset.
#[derive(Debug)]
pub struct TinyTpcds {
    tables: HashMap<String, Arc<Table>>,
}

/// Row-count profile at `scale = 1.0`; all fact tables scale linearly.
const ITEM_ROWS: usize = 200;
const CUSTOMER_ROWS: usize = 400;
const STORE_ROWS: usize = 12;
const DATE_ROWS: usize = 365 * 5; // 5 years, like TPC-DS 1998-2002
const STORE_SALES_ROWS: usize = 6000;
const CATALOG_SALES_ROWS: usize = 3600;
const WEB_SALES_ROWS: usize = 1800;

impl TinyTpcds {
    /// Generates a dataset at the given scale (1.0 ≈ a few MB) with a
    /// fixed seed.
    pub fn generate(scale: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_items = scale_rows(ITEM_ROWS, scale.sqrt());
        let n_customers = scale_rows(CUSTOMER_ROWS, scale.sqrt());
        let mut tables = HashMap::new();
        tables.insert("date_dim".to_string(), Arc::new(date_dim()));
        tables.insert("item".to_string(), Arc::new(item(n_items, &mut rng)));
        tables.insert(
            "customer".to_string(),
            Arc::new(customer(n_customers, &mut rng)),
        );
        tables.insert("store".to_string(), Arc::new(store(STORE_ROWS, &mut rng)));
        for (name, rows) in [
            ("store_sales", scale_rows(STORE_SALES_ROWS, scale)),
            ("catalog_sales", scale_rows(CATALOG_SALES_ROWS, scale)),
            ("web_sales", scale_rows(WEB_SALES_ROWS, scale)),
        ] {
            tables.insert(
                name.to_string(),
                Arc::new(sales_fact(rows, n_items, n_customers, STORE_ROWS, &mut rng)),
            );
        }
        TinyTpcds { tables }
    }

    /// The generated tables by name.
    pub fn tables(&self) -> &HashMap<String, Arc<Table>> {
        &self.tables
    }

    /// One table.
    pub fn table(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// Writes every table into a disk catalog (the "data ingestion" step
    /// preceding an MV refresh run).
    pub fn load_into(&self, disk: &sc_engine::storage::DiskCatalog) -> sc_engine::Result<()> {
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        for name in names {
            disk.write_table(name, &self.tables[name])?;
        }
        Ok(())
    }

    /// Total bytes across all tables.
    pub fn total_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.byte_size()).sum()
    }
}

fn scale_rows(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(1)
}

/// `date_dim`: one row per day over five years with year/month columns.
pub fn date_dim() -> Table {
    let mut t = TableBuilder::new()
        .column("d_date_sk", DataType::Int64)
        .column("d_date", DataType::Date)
        .column("d_year", DataType::Int64)
        .column("d_moy", DataType::Int64)
        .build();
    for i in 0..DATE_ROWS as i64 {
        let year = 1998 + i / 365;
        let moy = (i % 365) / 31 + 1;
        t.push_row(vec![
            Value::Int64(i),
            Value::Date(10227 + i as i32), // 1998-01-01 ≈ day 10227
            Value::Int64(year),
            Value::Int64(moy.min(12)),
        ])
        .expect("schema-consistent row");
    }
    t
}

/// `item`: catalog items with category and price.
pub fn item(n: usize, rng: &mut StdRng) -> Table {
    const CATEGORIES: [&str; 6] = ["Books", "Electronics", "Home", "Music", "Shoes", "Sports"];
    let mut t = TableBuilder::new()
        .column("i_item_sk", DataType::Int64)
        .column("i_category", DataType::Utf8)
        .column("i_current_price", DataType::Float64)
        .build();
    for i in 0..n as i64 {
        t.push_row(vec![
            Value::Int64(i),
            Value::Utf8(CATEGORIES[rng.gen_range(0..CATEGORIES.len())].to_string()),
            Value::Float64((rng.gen_range(100..99900) as f64) / 100.0),
        ])
        .expect("schema-consistent row");
    }
    t
}

/// `customer`: customers with a birth year and state.
pub fn customer(n: usize, rng: &mut StdRng) -> Table {
    const STATES: [&str; 8] = ["CA", "IL", "NY", "TX", "WA", "GA", "OH", "FL"];
    let mut t = TableBuilder::new()
        .column("c_customer_sk", DataType::Int64)
        .column("c_birth_year", DataType::Int64)
        .column("c_state", DataType::Utf8)
        .build();
    for i in 0..n as i64 {
        t.push_row(vec![
            Value::Int64(i),
            Value::Int64(rng.gen_range(1930..2005)),
            Value::Utf8(STATES[rng.gen_range(0..STATES.len())].to_string()),
        ])
        .expect("schema-consistent row");
    }
    t
}

/// `store`: stores with a state.
pub fn store(n: usize, rng: &mut StdRng) -> Table {
    const STATES: [&str; 4] = ["CA", "IL", "NY", "TX"];
    let mut t = TableBuilder::new()
        .column("s_store_sk", DataType::Int64)
        .column("s_state", DataType::Utf8)
        .build();
    for i in 0..n as i64 {
        t.push_row(vec![
            Value::Int64(i),
            Value::Utf8(STATES[rng.gen_range(0..STATES.len())].to_string()),
        ])
        .expect("schema-consistent row");
    }
    t
}

/// A sales fact table (shared schema for store/catalog/web sales).
pub fn sales_fact(
    rows: usize,
    n_items: usize,
    n_customers: usize,
    n_stores: usize,
    rng: &mut StdRng,
) -> Table {
    let mut t = TableBuilder::new()
        .column("ss_item_sk", DataType::Int64)
        .column("ss_customer_sk", DataType::Int64)
        .column("ss_store_sk", DataType::Int64)
        .column("ss_sold_date_sk", DataType::Int64)
        .column("ss_quantity", DataType::Int64)
        .column("ss_sales_price", DataType::Float64)
        .build();
    for _ in 0..rows {
        t.push_row(vec![
            Value::Int64(rng.gen_range(0..n_items as i64)),
            Value::Int64(rng.gen_range(0..n_customers as i64)),
            Value::Int64(rng.gen_range(0..n_stores as i64)),
            Value::Int64(rng.gen_range(0..DATE_ROWS as i64)),
            Value::Int64(rng.gen_range(1..100)),
            Value::Float64((rng.gen_range(100..50000) as f64) / 100.0),
        ])
        .expect("schema-consistent row");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_tables() {
        let ds = TinyTpcds::generate(1.0, 42);
        for name in [
            "date_dim",
            "item",
            "customer",
            "store",
            "store_sales",
            "catalog_sales",
            "web_sales",
        ] {
            assert!(ds.table(name).is_some(), "missing {name}");
        }
        assert_eq!(
            ds.table("store_sales").unwrap().num_rows(),
            STORE_SALES_ROWS
        );
        assert!(ds.total_bytes() > 100_000);
    }

    #[test]
    fn scale_changes_fact_rows() {
        let small = TinyTpcds::generate(0.5, 42);
        let big = TinyTpcds::generate(2.0, 42);
        assert_eq!(
            small.table("store_sales").unwrap().num_rows(),
            STORE_SALES_ROWS / 2
        );
        assert_eq!(
            big.table("store_sales").unwrap().num_rows(),
            STORE_SALES_ROWS * 2
        );
        // Dimensions grow with sqrt(scale).
        assert!(big.table("item").unwrap().num_rows() < ITEM_ROWS * 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TinyTpcds::generate(1.0, 7);
        let b = TinyTpcds::generate(1.0, 7);
        assert_eq!(
            a.table("store_sales").unwrap(),
            b.table("store_sales").unwrap()
        );
        let c = TinyTpcds::generate(1.0, 8);
        assert_ne!(
            a.table("store_sales").unwrap(),
            c.table("store_sales").unwrap()
        );
    }

    #[test]
    fn foreign_keys_resolve() {
        let ds = TinyTpcds::generate(1.0, 42);
        let items = ds.table("item").unwrap().num_rows() as i64;
        let sales = ds.table("store_sales").unwrap();
        let col = sales.column_by_name("ss_item_sk").unwrap();
        for row in 0..sales.num_rows() {
            match col.value(row) {
                Value::Int64(sk) => assert!(sk >= 0 && sk < items),
                other => panic!("bad key {other:?}"),
            }
        }
    }

    #[test]
    fn load_into_disk_catalog() {
        let dir = tempfile::tempdir().unwrap();
        let disk = sc_engine::storage::DiskCatalog::open(dir.path()).unwrap();
        let ds = TinyTpcds::generate(0.2, 42);
        ds.load_into(&disk).unwrap();
        assert_eq!(disk.list().unwrap().len(), 7);
        assert_eq!(
            disk.read_table("item").unwrap().num_rows(),
            ds.table("item").unwrap().num_rows()
        );
    }

    #[test]
    fn date_dim_years_cover_range() {
        let d = date_dim();
        let years = d.column_by_name("d_year").unwrap();
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for r in 0..d.num_rows() {
            if let Value::Int64(y) = years.value(r) {
                min = min.min(y);
                max = max.max(y);
            }
        }
        assert_eq!((min, max), (1998, 2002));
    }
}
