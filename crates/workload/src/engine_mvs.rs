//! Runnable MV workloads over the [`crate::tpcds`] tables: real
//! `sc-engine` plans used by the examples, the Figure 3 experiment, and
//! the cross-crate integration tests.
//!
//! Also provides the *execution metadata* step of the S/C architecture
//! (§III-A): [`problem_from_metrics`] turns a profiled refresh run into an
//! S/C Opt instance (observed output sizes + model-estimated speedup
//! scores), which is exactly what the paper's Optimizer consumes.

use sc_core::{CostModel, MvMeta, Problem};
use sc_dag::Dag;
use sc_engine::controller::{Controller, MvDefinition, RunMetrics};
use sc_engine::exec::AggFunc;
use sc_engine::exec::SortKey;
use sc_engine::expr::Expr;
use sc_engine::plan::{AggExpr, LogicalPlan};

/// The Figure 3 microbenchmark: a multi-way join of a fact table with
/// three dimensions, materialized as a single MV (the paper uses the
/// TPC-H Q8 join of customer/orders/lineitem/nation; this is the TPC-DS
/// equivalent over our generated tables).
pub fn fact_join_mv() -> MvDefinition {
    MvDefinition::new(
        "fact_join",
        LogicalPlan::scan("store_sales")
            .join(
                LogicalPlan::scan("item"),
                vec![("ss_item_sk".into(), "i_item_sk".into())],
            )
            .join(
                LogicalPlan::scan("customer"),
                vec![("ss_customer_sk".into(), "c_customer_sk".into())],
            )
            .join(
                LogicalPlan::scan("date_dim"),
                vec![("ss_sold_date_sk".into(), "d_date_sk".into())],
            ),
    )
}

/// A realistic multi-MV refresh pipeline over the TPC-DS-style tables:
/// nine dependent MVs covering enriched facts, per-category/state
/// aggregates, a union across channels, and report tables. The structure
/// deliberately has the Figure 4 shape — an expensive enriched fact table
/// consumed by several cheap aggregates — which is where S/C's flagging
/// pays off.
pub fn sales_pipeline() -> Vec<MvDefinition> {
    let year_filter = |col: &str| Expr::col(col).ge(Expr::lit(0i64)); // full range
    vec![
        // 0: enriched store sales (fact ⋈ item ⋈ date) — the hub table.
        MvDefinition::new(
            "enriched_sales",
            LogicalPlan::scan("store_sales")
                .filter(year_filter("ss_quantity"))
                .join(
                    LogicalPlan::scan("item"),
                    vec![("ss_item_sk".into(), "i_item_sk".into())],
                )
                .join(
                    LogicalPlan::scan("date_dim"),
                    vec![("ss_sold_date_sk".into(), "d_date_sk".into())],
                ),
        ),
        // 1: revenue by category.
        MvDefinition::new(
            "rev_by_category",
            LogicalPlan::scan("enriched_sales").aggregate(
                vec!["i_category".into()],
                vec![
                    AggExpr::new(AggFunc::Sum, "ss_sales_price", "revenue"),
                    AggExpr::new(AggFunc::Count, "ss_item_sk", "n_sales"),
                ],
            ),
        ),
        // 2: revenue by year.
        MvDefinition::new(
            "rev_by_year",
            LogicalPlan::scan("enriched_sales").aggregate(
                vec!["d_year".into()],
                vec![AggExpr::new(AggFunc::Sum, "ss_sales_price", "revenue")],
            ),
        ),
        // 3: high-value sales slice.
        MvDefinition::new(
            "premium_sales",
            LogicalPlan::scan("enriched_sales")
                .filter(Expr::col("ss_sales_price").gt(Expr::lit(400.0f64))),
        ),
        // 4: customer enrichment of the premium slice.
        MvDefinition::new(
            "premium_by_state",
            LogicalPlan::scan("premium_sales")
                .join(
                    LogicalPlan::scan("customer"),
                    vec![("ss_customer_sk".into(), "c_customer_sk".into())],
                )
                .aggregate(
                    vec!["c_state".into()],
                    vec![AggExpr::new(
                        AggFunc::Sum,
                        "ss_sales_price",
                        "premium_revenue",
                    )],
                ),
        ),
        // 5: catalog channel aggregate (independent branch).
        MvDefinition::new(
            "catalog_by_item",
            LogicalPlan::scan("catalog_sales").aggregate(
                vec!["ss_item_sk".into()],
                vec![AggExpr::new(
                    AggFunc::Sum,
                    "ss_sales_price",
                    "catalog_revenue",
                )],
            ),
        ),
        // 6: web channel aggregate (independent branch).
        MvDefinition::new(
            "web_by_item",
            LogicalPlan::scan("web_sales").aggregate(
                vec!["ss_item_sk".into()],
                vec![AggExpr::new(AggFunc::Sum, "ss_sales_price", "web_revenue")],
            ),
        ),
        // 7: cross-channel union report.
        MvDefinition::new(
            "cross_channel",
            LogicalPlan::scan("catalog_by_item")
                .project(vec![
                    (Expr::col("ss_item_sk"), "item_sk".into()),
                    (Expr::col("catalog_revenue"), "revenue".into()),
                ])
                .union(LogicalPlan::scan("web_by_item").project(vec![
                    (Expr::col("ss_item_sk"), "item_sk".into()),
                    (Expr::col("web_revenue"), "revenue".into()),
                ])),
        ),
        // 8: top items across channels.
        MvDefinition::new(
            "top_items",
            LogicalPlan::scan("cross_channel")
                .aggregate(
                    vec!["item_sk".into()],
                    vec![AggExpr::new(AggFunc::Sum, "revenue", "total_revenue")],
                )
                .sort(vec![SortKey::desc("total_revenue")])
                .limit(25),
        ),
    ]
}

/// Builds an S/C Opt instance from a profiled refresh run: observed output
/// sizes become node sizes, speedup scores come from the cost model and
/// the dependency fan-out. This is the paper's "Execution Metadata" — the
/// DBMS-side measurements from past runs that feed the Optimizer.
pub fn problem_from_metrics(
    mvs: &[MvDefinition],
    metrics: &RunMetrics,
    cost: &CostModel,
    budget: u64,
) -> sc_core::Result<Problem> {
    assert_eq!(mvs.len(), metrics.nodes.len(), "one metric per MV expected");
    // metrics.nodes is in execution order; map back to MV index by name.
    let mut size_by_name = std::collections::HashMap::new();
    for m in &metrics.nodes {
        size_by_name.insert(m.name.clone(), m.output_bytes);
    }
    let edges = Controller::dependencies(mvs);
    let mut children = vec![0usize; mvs.len()];
    for &(i, _) in &edges {
        children[i] += 1;
    }
    let graph: Dag<MvMeta> = Dag::from_parts(
        mvs.iter().enumerate().map(|(i, mv)| {
            let size = size_by_name.get(&mv.name).copied().unwrap_or(0);
            MvMeta::new(mv.name.clone(), size, cost.speedup_score(size, children[i]))
        }),
        edges,
    )?;
    Problem::new(graph, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcds::TinyTpcds;
    use sc_core::{Plan, ScOptimizer};
    use sc_dag::NodeId;
    use sc_engine::storage::{DiskCatalog, MemoryCatalog};

    fn setup() -> (tempfile::TempDir, DiskCatalog) {
        let dir = tempfile::tempdir().unwrap();
        let disk = DiskCatalog::open(dir.path()).unwrap();
        TinyTpcds::generate(0.3, 42).load_into(&disk).unwrap();
        (dir, disk)
    }

    #[test]
    fn fact_join_runs() {
        let (_dir, disk) = setup();
        let mem = MemoryCatalog::new(64 << 20);
        let mvs = vec![fact_join_mv()];
        let plan = Plan::unoptimized(vec![NodeId(0)]);
        let m = Controller::new(&disk, &mem).refresh(&mvs, &plan).unwrap();
        assert!(m.nodes[0].rows > 0);
        assert!(disk.contains("fact_join"));
    }

    #[test]
    fn sales_pipeline_structure() {
        let mvs = sales_pipeline();
        assert_eq!(mvs.len(), 9);
        let deps = Controller::dependencies(&mvs);
        // enriched_sales feeds three consumers.
        let hub_children = deps.iter().filter(|&&(i, _)| i == 0).count();
        assert_eq!(hub_children, 3);
        // cross_channel reads both channel aggregates.
        assert!(deps.contains(&(5, 7)));
        assert!(deps.contains(&(6, 7)));
        assert!(deps.contains(&(7, 8)));
    }

    #[test]
    fn pipeline_runs_and_optimized_run_matches_baseline_output() {
        let (_dir, disk) = setup();
        let mem = MemoryCatalog::new(64 << 20);
        let mvs = sales_pipeline();
        let order: Vec<NodeId> = (0..mvs.len()).map(NodeId).collect();
        let controller = Controller::new(&disk, &mem);

        // Baseline run, then profile -> optimize -> optimized run.
        let baseline = controller.refresh(&mvs, &Plan::unoptimized(order)).unwrap();
        let cost = CostModel::paper();
        let problem = problem_from_metrics(&mvs, &baseline, &cost, 1 << 20).unwrap();
        let plan = ScOptimizer::default().optimize(&problem).unwrap();
        assert!(plan.flagged.count() > 0, "something must be worth flagging");

        let baseline_tables: Vec<_> = mvs
            .iter()
            .map(|mv| disk.read_table(&mv.name).unwrap())
            .collect();
        let optimized = controller.refresh(&mvs, &plan).unwrap();
        assert_eq!(optimized.nodes.len(), mvs.len());
        for (mv, before) in mvs.iter().zip(baseline_tables) {
            let after = disk.read_table(&mv.name).unwrap();
            assert_eq!(before, after, "optimization must not change {}", mv.name);
        }
        assert!(mem.is_empty());
    }

    #[test]
    fn problem_from_metrics_uses_observed_sizes() {
        let (_dir, disk) = setup();
        let mem = MemoryCatalog::new(64 << 20);
        let mvs = sales_pipeline();
        let order: Vec<NodeId> = (0..mvs.len()).map(NodeId).collect();
        let metrics = Controller::new(&disk, &mem)
            .refresh(&mvs, &Plan::unoptimized(order))
            .unwrap();
        let problem = problem_from_metrics(&mvs, &metrics, &CostModel::paper(), 1 << 30).unwrap();
        assert_eq!(problem.len(), mvs.len());
        // Node 0 (enriched_sales) is the hub: largest size, highest score.
        let sizes = problem.sizes();
        let scores = problem.scores();
        let max_size = *sizes.iter().max().unwrap();
        assert_eq!(sizes[0], max_size);
        assert!(scores[0] >= scores[1]);
    }
}
