//! # sc-workload — workloads for evaluating S/C
//!
//! The paper evaluates S/C on five MV-refresh workloads built from TPC-DS
//! queries (Table III) over regular and date-partitioned datasets at
//! 10 GB–1 TB, plus a synthetic DAG generator for complex-workload scaling
//! experiments (§VI-H). This crate reproduces all of that:
//!
//! * [`DatasetSpec`] — the dataset axis: scale factor and the
//!   date-partitioned variant (TPC-DS vs TPC-DSp);
//! * [`PaperWorkload`] — the five workloads (I/O 1–3, Compute 1–2) as
//!   parametric [`sc_sim::SimWorkload`]s whose node counts match Table III
//!   and whose baseline I/O fractions are calibrated to the published
//!   ratios (51.5 / 59.0 / 46.6 / 0.9 / 28.3 %);
//! * [`synth`] — the §VI-H workload generator: layered DAGs with
//!   configurable size, height/width ratio, maximum out-degree and
//!   per-stage node-count variance, with node operations drawn from a
//!   Markov chain and sizes/scores derived from the operations;
//! * [`tpcds`] — seeded generators for TPC-DS-style base tables small
//!   enough to *actually execute* on `sc-engine`, and [`engine_mvs`] —
//!   runnable MV workloads over them (used by the Figure 3 experiment,
//!   the examples, and the cross-crate integration tests);
//! * [`updates`] — seeded update-stream generators: churn batches against
//!   engine tables (feeding the delta log for incremental refresh) and
//!   churn annotations for simulated workloads;
//! * [`scenario`] — unified [`ScenarioSpec`]s (tables + MV DAG + churn
//!   schedule + config) consumed by both the engine and the simulator,
//!   so engine/sim parity holds by construction rather than by test;
//! * [`corpus`] — the file-based `.scn` scenario format: parse a text
//!   case (tables, MV pipelines, churn, expected refresh decisions) into
//!   a [`ScenarioSpec`] with typed, line-anchored errors, feeding the
//!   committed differential corpus under `tests/corpus/`;
//! * [`tpch_shaped`] — a deterministic TPC-H-shaped star/snowflake
//!   generator with Zipf-skewed fact keys, plus the generated half of
//!   the corpus.

#![warn(missing_docs)]

pub mod corpus;
pub mod dataset;
pub mod engine_mvs;
pub mod paper;
pub mod scenario;
pub mod synth;
pub mod tpcds;
pub mod tpch_shaped;
pub mod updates;

pub use corpus::{CorpusCase, Expectation, ScenarioError};
pub use dataset::DatasetSpec;
pub use paper::PaperWorkload;
pub use scenario::{ChurnRound, InlineTable, ScenarioConfig, ScenarioSpec, TableSpec};
pub use synth::{GeneratorParams, SynthGenerator};
pub use tpch_shaped::TpchSpec;
pub use updates::UpdateStreamSpec;
