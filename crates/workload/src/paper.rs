//! The five evaluation workloads of Table III, reconstructed as parametric
//! simulation workloads.
//!
//! The paper builds each workload by splitting a group of TPC-DS queries
//! into select-project-join (SPJ) units — one MV per unit — and merging the
//! graphs of queries that share intermediate nodes. The exact SPJ graphs
//! are not published; what is published is, per workload, the query group,
//! the node count, and a Polars-profiled I/O fraction:
//!
//! | Workload  | queries        | nodes | I/O ratio |
//! |-----------|----------------|-------|-----------|
//! | I/O 1     | 5, 77, 80      | 21    | 51.5 %    |
//! | I/O 2     | 2, 59, 74, 75  | 19    | 59.0 %    |
//! | I/O 3     | 44, 49         | 26    | 46.6 %    |
//! | Compute 1 | 33, 56, 60, 61 | 21    | 0.9 %     |
//! | Compute 2 | 14, 23         | 16    | 28.3 %    |
//!
//! Each workload template fixes a *baseline time composition* — the shares
//! of base-table reads, intermediate writes, and compute in the
//! unoptimized single-node run (intermediate reads take what the structure
//! implies) — consistent with the speedups of Figures 9–11: the published
//! magnitudes require intermediate I/O to dominate the I/O-heavy
//! workloads, which matches the paper's own engine-level measurement that
//! read/write took 85 % of compute-time-equivalents (§II-C) even though
//! the coarser Polars estimates of Table III are lower. Intermediate sizes
//! follow a small/large mixture: most MVs sit well under a 1.6 % Memory
//! Catalog while a minority (early fact-table-sized intermediates) exceed
//! it — the reason the date-partitioned datasets, whose intermediates
//! shrink, leave S/C much more headroom (up to 5.08× in Figure 9b).
//!
//! Under date partitioning, base scans shrink 5× (one year partition of
//! five) while intermediates shrink only ~2.5× (year-over-year MVs still
//! span years); compute scales with bytes touched.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sc_sim::{SimConfig, SimNode, SimWorkload};

use crate::dataset::{DatasetSpec, FactTable};

/// One of the paper's five workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperWorkload {
    /// "I/O 1": TPC-DS 5, 77, 80 — profit/returns reporting.
    Io1,
    /// "I/O 2": TPC-DS 2, 59, 74, 75 — sales-over-time comparisons.
    Io2,
    /// "I/O 3": TPC-DS 44, 49 — ranking and returns analysis.
    Io3,
    /// "Compute 1": TPC-DS 33, 56, 60, 61 — item-scoped aggregations.
    Compute1,
    /// "Compute 2": TPC-DS 14, 23 — cross-channel frequent-item analysis.
    Compute2,
}

/// Structural parameters of one workload template.
#[derive(Debug, Clone)]
struct Shape {
    name: &'static str,
    queries: &'static [u32],
    nodes: usize,
    /// Table III's published I/O fraction (profiled with Python Polars).
    polars_io_ratio: f64,
    /// Share of baseline time spent scanning base (fact) tables.
    base_frac: f64,
    /// Share of baseline time spent writing intermediates.
    write_frac: f64,
    /// Share of baseline time spent in operators.
    compute_frac: f64,
    /// Fact tables scanned by the roots.
    roots: &'static [FactTable],
    /// Probability that an MV's output is "small" (well below a 1.6 %
    /// Memory Catalog).
    small_prob: f64,
    /// Small-table size range, percent of the dataset.
    small_pct: (f64, f64),
    /// Large-table size range, percent of the dataset.
    big_pct: (f64, f64),
    seed: u64,
}

impl PaperWorkload {
    /// All five workloads in the paper's order.
    pub fn all() -> [PaperWorkload; 5] {
        [
            PaperWorkload::Io1,
            PaperWorkload::Io2,
            PaperWorkload::Io3,
            PaperWorkload::Compute1,
            PaperWorkload::Compute2,
        ]
    }

    fn shape(&self) -> Shape {
        use FactTable::*;
        match self {
            PaperWorkload::Io1 => Shape {
                name: "I/O 1",
                queries: &[5, 77, 80],
                nodes: 21,
                polars_io_ratio: 0.515,
                base_frac: 0.17,
                write_frac: 0.29,
                compute_frac: 0.24,
                roots: &[StoreSales, CatalogSales, WebSales],
                small_prob: 0.97,
                small_pct: (0.05, 0.9),
                big_pct: (2.0, 3.0),
                seed: 0x5c01,
            },
            PaperWorkload::Io2 => Shape {
                name: "I/O 2",
                queries: &[2, 59, 74, 75],
                nodes: 19,
                polars_io_ratio: 0.590,
                base_frac: 0.14,
                write_frac: 0.32,
                compute_frac: 0.19,
                roots: &[StoreSales, CatalogSales, WebSales, StoreSales],
                small_prob: 1.0,
                small_pct: (0.06, 1.0),
                big_pct: (2.0, 3.0),
                seed: 0x5c02,
            },
            PaperWorkload::Io3 => Shape {
                name: "I/O 3",
                queries: &[44, 49],
                nodes: 26,
                polars_io_ratio: 0.466,
                base_frac: 0.20,
                write_frac: 0.27,
                compute_frac: 0.28,
                roots: &[StoreSales, WebSales],
                small_prob: 0.94,
                small_pct: (0.04, 0.8),
                big_pct: (1.8, 2.5),
                seed: 0x5c03,
            },
            PaperWorkload::Compute1 => Shape {
                name: "Compute 1",
                queries: &[33, 56, 60, 61],
                nodes: 21,
                polars_io_ratio: 0.009,
                base_frac: 0.06,
                write_frac: 0.02,
                compute_frac: 0.90,
                roots: &[StoreSales, CatalogSales, WebSales],
                small_prob: 1.0,
                small_pct: (0.005, 0.05),
                big_pct: (0.1, 0.2),
                seed: 0x5c04,
            },
            PaperWorkload::Compute2 => Shape {
                name: "Compute 2",
                queries: &[14, 23],
                nodes: 16,
                polars_io_ratio: 0.283,
                base_frac: 0.14,
                write_frac: 0.14,
                compute_frac: 0.58,
                roots: &[StoreSales, CatalogSales],
                small_prob: 0.95,
                small_pct: (0.03, 0.7),
                big_pct: (1.8, 2.5),
                seed: 0x5c05,
            },
        }
    }

    /// Display name ("I/O 1", …).
    pub fn name(&self) -> &'static str {
        self.shape().name
    }

    /// The TPC-DS queries the workload was built from.
    pub fn tpcds_queries(&self) -> &'static [u32] {
        self.shape().queries
    }

    /// Node count from Table III.
    pub fn node_count(&self) -> usize {
        self.shape().nodes
    }

    /// Baseline I/O fraction from Table III (Polars estimate).
    pub fn polars_io_ratio(&self) -> f64 {
        self.shape().polars_io_ratio
    }

    /// The baseline compute share the simulation targets (flat dataset);
    /// `1 - compute_share` is the effective engine-level I/O fraction.
    pub fn compute_share(&self) -> f64 {
        self.shape().compute_frac
    }

    /// Builds the workload for `dataset`.
    pub fn build(&self, dataset: &DatasetSpec) -> SimWorkload {
        let shape = self.shape();
        let mut rng = StdRng::seed_from_u64(shape.seed);
        let n = shape.nodes;
        let n_roots = shape.roots.len();
        debug_assert!(n_roots < n);
        let data_bytes = dataset.scale_gb * crate::dataset::GB;
        // Scans shrink 5x under partitioning; intermediates only ~2x.
        let int_scale = if dataset.partitioned { 0.4 } else { 1.0 };

        // --- structure + intermediate sizes (percent-of-dataset mixture).
        let mut out_bytes: Vec<u64> = Vec::with_capacity(n);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut parent_sets: Vec<Vec<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            let pct = if rng.gen_bool(shape.small_prob) {
                rng.gen_range(shape.small_pct.0..shape.small_pct.1)
            } else {
                rng.gen_range(shape.big_pct.0..shape.big_pct.1)
            };
            out_bytes.push((data_bytes * pct / 100.0 * int_scale).max(1024.0) as u64);
            if i < n_roots {
                parent_sets.push(Vec::new());
                continue;
            }
            // 1-2 recent parents: merged SPJ pipelines are mostly chains
            // with occasional branch joins.
            let n_parents = if rng.gen_bool(0.35) && i >= 2 { 2 } else { 1 };
            let mut parents: Vec<usize> = Vec::with_capacity(n_parents);
            while parents.len() < n_parents {
                let lo = i.saturating_sub(6);
                let p = rng.gen_range(lo..i);
                if !parents.contains(&p) {
                    parents.push(p);
                }
            }
            for &p in &parents {
                edges.push((p, i));
            }
            parent_sets.push(parents);
        }

        // --- derive the run's time budget from the write share.
        let cfg = SimConfig::paper(1); // bandwidths only
        let write_s: f64 = out_bytes
            .iter()
            .map(|&b| cfg.disk_latency_s + b as f64 / cfg.disk_write_bps)
            .sum();
        let total_s = write_s / shape.write_frac;

        // --- base reads sized to their share, split over the fact scans
        // (partition pruning cuts them 5x, shifting the mix toward
        // intermediate I/O exactly as in the paper's TPC-DSp runs).
        let base_target_bytes = shape.base_frac * total_s * cfg.disk_read_bps;
        let scan_weights: Vec<f64> = shape
            .roots
            .iter()
            .map(|&t| DatasetSpec::fact_fraction(t))
            .collect();
        let scan_weight_sum: f64 = scan_weights.iter().sum();
        let mut base_bytes = vec![0u64; n];
        for (i, w) in scan_weights.iter().enumerate() {
            let pruned = if dataset.partitioned { 0.2 } else { 1.0 };
            base_bytes[i] = (base_target_bytes * w / scan_weight_sum * pruned) as u64;
        }

        // --- compute sized to its share, spread by bytes touched; under
        // partitioning it scales down with the smaller data automatically.
        let weights: Vec<f64> = (0..n)
            .map(|i| {
                let parent_in: u64 = parent_sets[i].iter().map(|&p| out_bytes[p]).sum();
                (base_bytes[i] + parent_in + out_bytes[i]) as f64 + 1.0
            })
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        let compute_total = shape.compute_frac * total_s * int_scale.max(0.2);

        let nodes: Vec<SimNode> = (0..n)
            .map(|i| {
                let name = if i < n_roots {
                    format!("{}_root{}", shape.name, i)
                } else {
                    format!("{}_mv{}", shape.name, i)
                };
                SimNode::new(
                    name,
                    compute_total * weights[i] / weight_sum,
                    out_bytes[i],
                    base_bytes[i],
                )
            })
            .collect();
        SimWorkload::from_parts(nodes, edges).expect("template edges are forward-only")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::ScOptimizer;
    use sc_sim::Simulator;

    #[test]
    fn node_counts_match_table3() {
        let expect = [21, 19, 26, 21, 16];
        for (w, &n) in PaperWorkload::all().iter().zip(&expect) {
            let built = w.build(&DatasetSpec::tpcds(100.0));
            assert_eq!(built.len(), n, "{}", w.name());
        }
    }

    #[test]
    fn time_composition_is_calibrated() {
        let ds = DatasetSpec::tpcds(100.0);
        for w in PaperWorkload::all() {
            let built = w.build(&ds);
            let sim = Simulator::new(SimConfig::paper(1));
            let r = sim.run_unoptimized(&built).unwrap();
            let compute_share = r.total_compute_s() / r.total_s;
            let target = w.compute_share();
            assert!(
                (compute_share - target).abs() < 0.08,
                "{}: compute share {compute_share:.3} vs target {target:.3}",
                w.name()
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let ds = DatasetSpec::tpcds(100.0);
        let a = PaperWorkload::Io1.build(&ds);
        let b = PaperWorkload::Io1.build(&ds);
        for (x, y) in a.graph.payloads().iter().zip(b.graph.payloads()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn partitioned_variant_shrinks_scans_more_than_intermediates() {
        let flat = PaperWorkload::Io1.build(&DatasetSpec::tpcds(100.0));
        let part = PaperWorkload::Io1.build(&DatasetSpec::tpcds_partitioned(100.0));
        let flat_scan: u64 = flat
            .graph
            .payloads()
            .iter()
            .map(|nd| nd.base_read_bytes)
            .sum();
        let part_scan: u64 = part
            .graph
            .payloads()
            .iter()
            .map(|nd| nd.base_read_bytes)
            .sum();
        assert!(part_scan * 5 <= flat_scan + 5, "scans must shrink ~5x");
        let ratio = flat.total_write_bytes() as f64 / part.total_write_bytes() as f64;
        assert!(
            (ratio - 2.5).abs() < 0.1,
            "intermediates must shrink ~2.5x, got {ratio:.2}"
        );
    }

    #[test]
    fn sc_speeds_up_io_workloads_at_paper_memory() {
        let ds = DatasetSpec::tpcds(100.0);
        let budget = ds.memory_budget(1.6);
        for w in [PaperWorkload::Io1, PaperWorkload::Io2, PaperWorkload::Io3] {
            let built = w.build(&ds);
            let config = SimConfig::paper(budget);
            let problem = built.problem(&config).unwrap();
            let plan = ScOptimizer::default().optimize(&problem).unwrap();
            let sim = Simulator::new(config);
            let base = sim.run_unoptimized(&built).unwrap();
            let sc = sim.run(&built, &plan).unwrap();
            let speedup = base.total_s / sc.total_s;
            assert!(
                speedup > 1.2 && speedup < 3.5,
                "{}: speedup {speedup:.2} out of the paper's flat range",
                w.name()
            );
        }
    }

    #[test]
    fn partitioned_speedup_exceeds_flat() {
        let w = PaperWorkload::Io2;
        let mut speedups = Vec::new();
        for ds in [
            DatasetSpec::tpcds(100.0),
            DatasetSpec::tpcds_partitioned(100.0),
        ] {
            let budget = ds.memory_budget(if ds.partitioned { 0.8 } else { 1.6 });
            let built = w.build(&ds);
            let config = SimConfig::paper(budget);
            let problem = built.problem(&config).unwrap();
            let plan = ScOptimizer::default().optimize(&problem).unwrap();
            let sim = Simulator::new(config);
            let base = sim.run_unoptimized(&built).unwrap();
            let sc = sim.run(&built, &plan).unwrap();
            speedups.push(base.total_s / sc.total_s);
        }
        assert!(
            speedups[1] > speedups[0] + 0.2,
            "TPC-DSp speedup {:.2} must clearly exceed TPC-DS {:.2}",
            speedups[1],
            speedups[0]
        );
    }

    #[test]
    fn compute_workload_gains_little() {
        let ds = DatasetSpec::tpcds(100.0);
        let built = PaperWorkload::Compute1.build(&ds);
        let config = SimConfig::paper(ds.memory_budget(1.6));
        let problem = built.problem(&config).unwrap();
        let plan = ScOptimizer::default().optimize(&problem).unwrap();
        let sim = Simulator::new(config);
        let base = sim.run_unoptimized(&built).unwrap();
        let sc = sim.run(&built, &plan).unwrap();
        let speedup = base.total_s / sc.total_s;
        assert!(
            (1.0..1.2).contains(&speedup),
            "Compute 1 speedup {speedup:.3}"
        );
    }

    #[test]
    fn metadata_accessors() {
        assert_eq!(PaperWorkload::Io1.tpcds_queries(), &[5, 77, 80]);
        assert_eq!(PaperWorkload::Compute2.node_count(), 16);
        assert_eq!(PaperWorkload::all().len(), 5);
        assert!((PaperWorkload::Io2.polars_io_ratio() - 0.59).abs() < 1e-9);
        assert!(PaperWorkload::Compute1.compute_share() > 0.8);
    }
}
