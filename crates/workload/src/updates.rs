//! Seeded **update-stream generators**: churn against base tables (for the
//! engine's delta log) and churn annotations for simulated workloads — so
//! benchmarks and the simulator can exercise incremental refresh under
//! realistic insert/update/delete mixes.
//!
//! Engine-side, a stream is a sequence of [`sc_engine::exec::TableDelta`]
//! batches derived from a table's current contents: inserts clone existing
//! rows with perturbed measures (foreign keys stay resolvable), updates
//! pair an existing row's removal with a perturbed re-insert, deletes
//! remove sampled rows. Sim-side, [`churned`] scales every node's
//! `delta_bytes` annotation from a global delta fraction.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sc_engine::controller::{Controller, MvDefinition, RunMetrics};
use sc_engine::exec::{DeltaBatch, TableDelta};
use sc_engine::storage::{ingest, DeltaStore, DiskCatalog};
use sc_engine::{Table, Value};
use sc_sim::{SimNode, SimWorkload};

/// Churn mix for one generated batch, as fractions of the table's current
/// row count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStreamSpec {
    /// Fraction of rows appended (cloned from existing rows with perturbed
    /// numeric values, keeping join keys resolvable).
    pub insert_fraction: f64,
    /// Fraction of rows updated (delete old version + insert perturbed
    /// version).
    pub update_fraction: f64,
    /// Fraction of rows deleted.
    pub delete_fraction: f64,
}

impl UpdateStreamSpec {
    /// Insert-only churn at `fraction` — the append-mostly shape of real
    /// fact streams, and the only shape every delta operator supports.
    pub fn inserts(fraction: f64) -> Self {
        UpdateStreamSpec {
            insert_fraction: fraction,
            update_fraction: 0.0,
            delete_fraction: 0.0,
        }
    }

    /// A mixed stream with updates and deletes alongside inserts.
    pub fn mixed(insert: f64, update: f64, delete: f64) -> Self {
        UpdateStreamSpec {
            insert_fraction: insert,
            update_fraction: update,
            delete_fraction: delete,
        }
    }
}

/// Generates one churn batch against `table`'s current contents,
/// deterministic per `(spec, seed)`.
pub fn generate_delta(table: &Table, spec: &UpdateStreamSpec, seed: u64) -> TableDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = table.num_rows();
    let schema = table.schema().clone();
    let mut deletes = Table::empty(schema.clone());
    let mut inserts = Table::empty(schema);
    if n == 0 {
        return TableDelta::from_batch(DeltaBatch { deletes, inserts }).expect("schemas match");
    }

    let count = |fraction: f64| ((n as f64 * fraction).round() as usize).min(n);
    let row_values = |row: usize| -> Vec<Value> {
        (0..table.num_columns())
            .map(|c| table.value(row, c))
            .collect()
    };

    // Deletes and updates sample disjoint rows so one batch never touches
    // the same row twice.
    let mut sampled = vec![false; n];
    let mut sample = |rng: &mut StdRng, k: usize| -> Vec<usize> {
        let mut rows = Vec::with_capacity(k);
        let mut attempts = 0;
        while rows.len() < k && attempts < 20 * k + 100 {
            let r = rng.gen_range(0..n);
            if !sampled[r] {
                sampled[r] = true;
                rows.push(r);
            }
            attempts += 1;
        }
        rows
    };

    for row in sample(&mut rng, count(spec.delete_fraction)) {
        deletes.push_row(row_values(row)).expect("same schema");
    }
    for row in sample(&mut rng, count(spec.update_fraction)) {
        deletes.push_row(row_values(row)).expect("same schema");
        inserts
            .push_row(perturb(row_values(row), &mut rng))
            .expect("same schema");
    }
    for _ in 0..count(spec.insert_fraction) {
        let row = rng.gen_range(0..n);
        inserts
            .push_row(perturb(row_values(row), &mut rng))
            .expect("same schema");
    }
    TableDelta::from_batch(DeltaBatch { deletes, inserts }).expect("schemas match")
}

/// Perturbs a row's numeric measures (keys and strings are preserved, so
/// foreign keys stay resolvable): floats are scaled, the last integer
/// column is nudged.
fn perturb(mut values: Vec<Value>, rng: &mut StdRng) -> Vec<Value> {
    let last_int = values
        .iter()
        .rposition(|v| matches!(v, Value::Int64(_)))
        .unwrap_or(usize::MAX);
    for (i, v) in values.iter_mut().enumerate() {
        match v {
            Value::Float64(f) => *f = (*f * rng.gen_range(90..110) as f64 / 100.0).max(0.01),
            Value::Int64(x) if i == last_int => *x = (*x + rng.gen_range(0..3i64)).max(1),
            _ => {}
        }
    }
    values
}

/// Rough in-memory size of one row of `table`, used to turn delta
/// fractions into byte annotations.
fn avg_row_bytes(table: &Table) -> u64 {
    if table.num_rows() == 0 {
        return 0;
    }
    table.byte_size() / table.num_rows() as u64
}

/// Returns the byte size a delta of `fraction` of `table` would have —
/// handy for sizing Memory Catalog budgets in tests and benches.
pub fn delta_fraction_bytes(table: &Table, fraction: f64) -> u64 {
    (avg_row_bytes(table) as f64 * table.num_rows() as f64 * fraction) as u64
}

/// The join-hub churn scenario: seeded insert-only streams against the
/// *fact* (probe-side) tables of a join-hub pipeline while every
/// dimension (build-side) table stays untouched — exactly the shape the
/// delta-join rule maintains incrementally and byte-identically.
#[derive(Debug, Clone)]
pub struct JoinHubChurn {
    /// Fact tables receiving insert-only churn each round.
    pub fact_tables: Vec<String>,
    /// Fraction of each fact table's current rows appended per round.
    pub insert_fraction: f64,
}

impl JoinHubChurn {
    /// A scenario churning `fact_tables` by `insert_fraction` per round.
    pub fn new(
        fact_tables: impl IntoIterator<Item = impl Into<String>>,
        insert_fraction: f64,
    ) -> Self {
        JoinHubChurn {
            fact_tables: fact_tables.into_iter().map(Into::into).collect(),
            insert_fraction,
        }
    }

    /// The `sales_pipeline` scenario: `store_sales` churns, the `item` /
    /// `date_dim` / `customer` dimensions stay static.
    pub fn store_sales(insert_fraction: f64) -> Self {
        JoinHubChurn::new(["store_sales"], insert_fraction)
    }

    /// Generates one seeded churn round against every fact table's
    /// *current* stored contents and ingests it (base updated + delta
    /// logged). Streams are deterministic per `(self, stored state, seed)`,
    /// so two catalogs holding identical bases receive identical churn.
    pub fn ingest_round(
        &self,
        disk: &DiskCatalog,
        store: &DeltaStore,
        seed: u64,
    ) -> sc_engine::Result<()> {
        let spec = UpdateStreamSpec::inserts(self.insert_fraction);
        for (i, table) in self.fact_tables.iter().enumerate() {
            let base = disk.read_table(table)?;
            let delta = generate_delta(&base, &spec, seed.wrapping_add(i as u64));
            ingest(disk, store, table, delta)?;
        }
        Ok(())
    }
}

/// One churned base table in a scenario handed to [`mirror_workload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnedBase {
    /// Pending delta bytes logged against the table.
    pub delta_bytes: u64,
    /// Whether the pending stream removes rows.
    pub has_deletes: bool,
}

/// Reads a delta log's pending state into the churn map
/// [`mirror_workload`] consumes: one [`ChurnedBase`] per table with
/// logged batches.
pub fn pending_churn(store: &DeltaStore) -> HashMap<String, ChurnedBase> {
    store
        .tables()
        .into_iter()
        .filter_map(|t| {
            let d = store.pending(&t)?;
            Some((
                t,
                ChurnedBase {
                    delta_bytes: d.byte_size(),
                    has_deletes: d.has_deletes(),
                },
            ))
        })
        .collect()
}

/// Mirrors an engine MV workload into an annotated [`SimWorkload`] for a
/// churn scenario, so the simulator predicts the same per-node refresh
/// decisions (skip / incremental / full) as the engine's mode planner.
///
/// `metrics` must come from a **full** refresh of `mvs` (every node
/// executed, so output sizes and compute times are real); `churned` maps
/// each churned base table to its pending delta. Per node, the mirror
/// derives: reachability of churn (unreached nodes annotate `Some(0)` and
/// skip), an input-delta-sized estimate, operator support and publication
/// from [`sc_engine::plan::LogicalPlan::incremental_support`], and the
/// delta-join build side (static tables become [`SimNode::build_inputs`] /
/// `build_read_bytes`; a *churned* static base table marks the node
/// full-only, exactly as the engine recomputes it). Delete-carrying churn
/// is folded into `delta_supported` via the same shape rules the engine
/// applies (`maintainable`), which matches the engine whenever churn
/// reaches the node through publishing parents — the only way modes can
/// line up anyway.
pub fn mirror_workload(
    mvs: &[MvDefinition],
    metrics: &RunMetrics,
    disk: &DiskCatalog,
    churned: &HashMap<String, ChurnedBase>,
) -> sc_dag::Result<SimWorkload> {
    let index: HashMap<&str, usize> = mvs
        .iter()
        .enumerate()
        .map(|(i, m)| (m.name.as_str(), i))
        .collect();
    let by_name: HashMap<&str, &sc_engine::NodeMetrics> =
        metrics.nodes.iter().map(|n| (n.name.as_str(), n)).collect();
    let edges = Controller::dependencies(mvs);

    // Propagate churn reachability + an input-delta-sized estimate in
    // registration order (MVs only reference earlier MVs).
    let mut delta_est = vec![0u64; mvs.len()];
    let mut deletes_reach = vec![false; mvs.len()];
    let mut nodes = Vec::with_capacity(mvs.len());
    for (i, mv) in mvs.iter().enumerate() {
        let support = mv.plan.incremental_support();
        let statics = support.static_tables();
        let mut est = 0u64;
        let mut deletes = false;
        let mut static_churn = false;
        let mut base_read = 0u64;
        let mut build_read = 0u64;
        let mut build_parents: Vec<String> = Vec::new();
        for input in mv.plan.input_tables() {
            let is_static = statics.contains(&input);
            if is_static {
                build_read += disk.size_of(&input).unwrap_or(0);
            }
            if let Some(&p) = index.get(input.as_str()) {
                if is_static {
                    build_parents.push(input.clone());
                    if delta_est[p] > 0 {
                        static_churn = true;
                    }
                } else {
                    est += delta_est[p];
                    deletes |= deletes_reach[p];
                }
            } else {
                base_read += disk.size_of(&input).unwrap_or(0);
                if let Some(c) = churned.get(&input) {
                    if c.delta_bytes > 0 {
                        if is_static {
                            static_churn = true;
                        } else {
                            est += c.delta_bytes;
                            deletes |= c.has_deletes;
                        }
                    }
                }
            }
        }
        delta_est[i] = est + if static_churn { 1 } else { 0 };
        deletes_reach[i] = deletes;

        let m = by_name
            .get(mv.name.as_str())
            .unwrap_or_else(|| panic!("no metrics for MV '{}'", mv.name));
        let mut node = SimNode::new(mv.name.clone(), m.compute_s, m.output_bytes, base_read)
            .with_delta(delta_est[i])
            .with_build_side(build_parents, build_read);
        if static_churn || !support.maintainable(deletes) {
            node = node.full_only();
        }
        if !support.publishes_delta() {
            node = node.merge_only();
        }
        if support.publishes_delta() && !deletes {
            // Insert-only churn through a delta-publishing shape lands as
            // an appended segment — mirror of the engine's append rule.
            node = node.appendable();
        }
        nodes.push(node);
    }
    SimWorkload::from_parts(nodes, edges)
}

/// Annotates every node of a simulated workload with churn at a global
/// `delta_fraction` of its output (seeded jitter of ±50% per node), for
/// churn-heavy sim scenarios. Nodes keep their `delta_supported` flag.
pub fn churned(workload: &SimWorkload, delta_fraction: f64, seed: u64) -> SimWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = workload.graph.map(|_, node| {
        let jitter = rng.gen_range(50..150) as f64 / 100.0;
        let delta = (node.output_bytes as f64 * delta_fraction * jitter) as u64;
        let mut n = node.clone();
        n.delta_bytes = Some(delta.min(node.output_bytes));
        n
    });
    SimWorkload { graph }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcds::TinyTpcds;
    use sc_core::RefreshMode;
    use sc_sim::{SimConfig, SimNode, Simulator};

    #[test]
    fn insert_only_stream_is_seeded_and_sized() {
        let ds = TinyTpcds::generate(0.3, 7);
        let sales = ds.table("store_sales").unwrap();
        let spec = UpdateStreamSpec::inserts(0.05);
        let a = generate_delta(sales, &spec, 1);
        let b = generate_delta(sales, &spec, 1);
        let c = generate_delta(sales, &spec, 2);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, c, "different seed, different stream");
        assert!(!a.has_deletes());
        let expected = (sales.num_rows() as f64 * 0.05).round() as usize;
        assert_eq!(a.insert_rows(), expected);
    }

    #[test]
    fn mixed_stream_has_all_three_shapes() {
        let ds = TinyTpcds::generate(0.3, 7);
        let sales = ds.table("store_sales").unwrap();
        let spec = UpdateStreamSpec::mixed(0.02, 0.03, 0.01);
        let d = generate_delta(sales, &spec, 9);
        assert!(d.has_deletes());
        let n = sales.num_rows() as f64;
        // updates contribute to both sides.
        assert_eq!(
            d.delete_rows(),
            (n * 0.01).round() as usize + (n * 0.03).round() as usize
        );
        assert_eq!(
            d.insert_rows(),
            (n * 0.02).round() as usize + (n * 0.03).round() as usize
        );
        // Applying the delta keeps the row count consistent.
        let applied = d.apply(sales).unwrap();
        assert_eq!(
            applied.num_rows(),
            sales.num_rows() + d.insert_rows() - d.delete_rows()
        );
    }

    #[test]
    fn perturbation_preserves_keys() {
        let ds = TinyTpcds::generate(0.2, 3);
        let sales = ds.table("store_sales").unwrap();
        let items = ds.table("item").unwrap().num_rows() as i64;
        let d = generate_delta(sales, &UpdateStreamSpec::inserts(0.1), 4);
        let ins = &d.batches()[0].inserts;
        let col = ins.column_by_name("ss_item_sk").unwrap();
        for r in 0..ins.num_rows() {
            match col.value(r) {
                Value::Int64(sk) => assert!(sk >= 0 && sk < items, "key stays resolvable"),
                other => panic!("bad key {other:?}"),
            }
        }
    }

    #[test]
    fn empty_table_yields_empty_delta() {
        let empty = sc_engine::TableBuilder::new()
            .column("x", sc_engine::DataType::Int64)
            .build();
        let d = generate_delta(&empty, &UpdateStreamSpec::mixed(0.5, 0.5, 0.5), 1);
        assert!(d.is_empty());
    }

    #[test]
    fn delta_fraction_bytes_scales() {
        let ds = TinyTpcds::generate(0.3, 7);
        let sales = ds.table("store_sales").unwrap();
        let five = delta_fraction_bytes(sales, 0.05);
        let ten = delta_fraction_bytes(sales, 0.10);
        assert!(five > 0);
        assert!(ten > five);
        assert!(ten <= sales.byte_size());
    }

    #[test]
    fn join_hub_churn_is_deterministic_across_rigs() {
        let mk = || {
            let dir = tempfile::tempdir().unwrap();
            let disk = sc_engine::storage::DiskCatalog::open(dir.path()).unwrap();
            TinyTpcds::generate(0.3, 7).load_into(&disk).unwrap();
            (dir, disk, DeltaStore::new())
        };
        let (_d1, disk1, store1) = mk();
        let (_d2, disk2, store2) = mk();
        let churn = JoinHubChurn::store_sales(0.05);
        for round in 0..2u64 {
            churn.ingest_round(&disk1, &store1, round).unwrap();
            churn.ingest_round(&disk2, &store2, round).unwrap();
        }
        assert_eq!(
            store1.pending("store_sales").unwrap(),
            store2.pending("store_sales").unwrap()
        );
        assert_eq!(store1.pending("store_sales").unwrap().batches().len(), 2);
        assert!(!store1.pending("store_sales").unwrap().has_deletes());
        assert_eq!(
            disk1.read_table("store_sales").unwrap(),
            disk2.read_table("store_sales").unwrap()
        );
        // Dimensions stay untouched.
        assert!(store1.pending("item").is_none());
    }

    #[test]
    fn mirror_workload_annotates_join_hub_shapes() {
        use crate::engine_mvs::sales_pipeline;
        use sc_core::Plan;
        use sc_dag::NodeId;
        use sc_engine::controller::Controller;
        use sc_engine::storage::MemoryCatalog;

        let dir = tempfile::tempdir().unwrap();
        let disk = sc_engine::storage::DiskCatalog::open(dir.path()).unwrap();
        TinyTpcds::generate(0.3, 7).load_into(&disk).unwrap();
        let mvs = sales_pipeline();
        let mem = MemoryCatalog::new(64 << 20);
        let plan = Plan::unoptimized((0..mvs.len()).map(NodeId).collect());
        let metrics = Controller::new(&disk, &mem).refresh(&mvs, &plan).unwrap();

        let mut churned = HashMap::new();
        churned.insert(
            "store_sales".to_string(),
            ChurnedBase {
                delta_bytes: 4096,
                has_deletes: false,
            },
        );
        let w = mirror_workload(&mvs, &metrics, &disk, &churned).unwrap();
        let node = |name: &str| {
            w.graph
                .node_ids()
                .map(|v| w.graph.node(v))
                .find(|n| n.name == name)
                .unwrap()
                .clone()
        };
        // The join hub: churn reaches it, dimensions are its static build
        // side (base tables, so bytes only — no build parents).
        let hub = node("enriched_sales");
        assert_eq!(hub.delta_bytes, Some(4096));
        assert!(hub.delta_supported && hub.delta_publishes);
        assert!(hub.build_inputs.is_empty());
        assert!(hub.build_read_bytes > 0);
        // Aggregates over the hub merge without publishing.
        let agg = node("rev_by_category");
        assert!(agg.delta_supported && !agg.delta_publishes);
        // The untouched channels annotate zero delta (skip candidates).
        assert_eq!(node("web_by_item").delta_bytes, Some(0));
        // The union report is full-only.
        assert!(!node("cross_channel").delta_supported);
        // A churned *dimension* instead marks the hub full-only.
        let mut churned_dim = HashMap::new();
        churned_dim.insert(
            "item".to_string(),
            ChurnedBase {
                delta_bytes: 1024,
                has_deletes: false,
            },
        );
        let w2 = mirror_workload(&mvs, &metrics, &disk, &churned_dim).unwrap();
        let hub2 = w2
            .graph
            .node_ids()
            .map(|v| w2.graph.node(v))
            .find(|n| n.name == "enriched_sales")
            .unwrap();
        assert!(!hub2.delta_supported);
        assert!(hub2.delta_bytes.unwrap() > 0, "churn still reaches the hub");
    }

    #[test]
    fn churned_sim_workload_runs_incrementally() {
        const GIB: u64 = 1 << 30;
        let w = SimWorkload::from_parts(
            [
                SimNode::new("hub", 5.0, 4 * GIB, 8 * GIB),
                SimNode::new("agg", 2.0, GIB / 16, 0),
            ],
            [(0, 1)],
        )
        .unwrap();
        let churny = churned(&w, 0.05, 11);
        for v in churny.graph.node_ids() {
            let n = churny.graph.node(v);
            let d = n.delta_bytes.expect("annotated");
            assert!(d > 0 && d <= n.output_bytes);
        }
        let plan = sc_core::Plan::unoptimized(churny.graph.kahn_order());
        let cfg = SimConfig::paper(GIB);
        let full = Simulator::new(cfg.clone().with_refresh_mode(RefreshMode::AlwaysFull))
            .run(&churny, &plan)
            .unwrap();
        let inc = Simulator::new(cfg.with_refresh_mode(RefreshMode::AlwaysIncremental))
            .run(&churny, &plan)
            .unwrap();
        assert!(inc.total_s < full.total_s);
    }
}
