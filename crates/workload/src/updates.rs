//! Seeded **update-stream generators**: churn against base tables (for the
//! engine's delta log) and churn annotations for simulated workloads — so
//! benchmarks and the simulator can exercise incremental refresh under
//! realistic insert/update/delete mixes.
//!
//! Engine-side, a stream is a sequence of [`sc_engine::exec::TableDelta`]
//! batches derived from a table's current contents: inserts clone existing
//! rows with perturbed measures (foreign keys stay resolvable), updates
//! pair an existing row's removal with a perturbed re-insert, deletes
//! remove sampled rows. Sim-side, [`churned`] scales every node's
//! `delta_bytes` annotation from a global delta fraction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sc_engine::exec::{DeltaBatch, TableDelta};
use sc_engine::{Table, Value};
use sc_sim::SimWorkload;

/// Churn mix for one generated batch, as fractions of the table's current
/// row count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStreamSpec {
    /// Fraction of rows appended (cloned from existing rows with perturbed
    /// numeric values, keeping join keys resolvable).
    pub insert_fraction: f64,
    /// Fraction of rows updated (delete old version + insert perturbed
    /// version).
    pub update_fraction: f64,
    /// Fraction of rows deleted.
    pub delete_fraction: f64,
}

impl UpdateStreamSpec {
    /// Insert-only churn at `fraction` — the append-mostly shape of real
    /// fact streams, and the only shape every delta operator supports.
    pub fn inserts(fraction: f64) -> Self {
        UpdateStreamSpec {
            insert_fraction: fraction,
            update_fraction: 0.0,
            delete_fraction: 0.0,
        }
    }

    /// A mixed stream with updates and deletes alongside inserts.
    pub fn mixed(insert: f64, update: f64, delete: f64) -> Self {
        UpdateStreamSpec {
            insert_fraction: insert,
            update_fraction: update,
            delete_fraction: delete,
        }
    }
}

/// Generates one churn batch against `table`'s current contents,
/// deterministic per `(spec, seed)`.
pub fn generate_delta(table: &Table, spec: &UpdateStreamSpec, seed: u64) -> TableDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = table.num_rows();
    let schema = table.schema().clone();
    let mut deletes = Table::empty(schema.clone());
    let mut inserts = Table::empty(schema);
    if n == 0 {
        return TableDelta::from_batch(DeltaBatch { deletes, inserts }).expect("schemas match");
    }

    let count = |fraction: f64| ((n as f64 * fraction).round() as usize).min(n);
    let row_values = |row: usize| -> Vec<Value> {
        (0..table.num_columns())
            .map(|c| table.value(row, c))
            .collect()
    };

    // Deletes and updates sample disjoint rows so one batch never touches
    // the same row twice.
    let mut sampled = vec![false; n];
    let mut sample = |rng: &mut StdRng, k: usize| -> Vec<usize> {
        let mut rows = Vec::with_capacity(k);
        let mut attempts = 0;
        while rows.len() < k && attempts < 20 * k + 100 {
            let r = rng.gen_range(0..n);
            if !sampled[r] {
                sampled[r] = true;
                rows.push(r);
            }
            attempts += 1;
        }
        rows
    };

    for row in sample(&mut rng, count(spec.delete_fraction)) {
        deletes.push_row(row_values(row)).expect("same schema");
    }
    for row in sample(&mut rng, count(spec.update_fraction)) {
        deletes.push_row(row_values(row)).expect("same schema");
        inserts
            .push_row(perturb(row_values(row), &mut rng))
            .expect("same schema");
    }
    for _ in 0..count(spec.insert_fraction) {
        let row = rng.gen_range(0..n);
        inserts
            .push_row(perturb(row_values(row), &mut rng))
            .expect("same schema");
    }
    TableDelta::from_batch(DeltaBatch { deletes, inserts }).expect("schemas match")
}

/// Perturbs a row's numeric measures (keys and strings are preserved, so
/// foreign keys stay resolvable): floats are scaled, the last integer
/// column is nudged.
fn perturb(mut values: Vec<Value>, rng: &mut StdRng) -> Vec<Value> {
    let last_int = values
        .iter()
        .rposition(|v| matches!(v, Value::Int64(_)))
        .unwrap_or(usize::MAX);
    for (i, v) in values.iter_mut().enumerate() {
        match v {
            Value::Float64(f) => *f = (*f * rng.gen_range(90..110) as f64 / 100.0).max(0.01),
            Value::Int64(x) if i == last_int => *x = (*x + rng.gen_range(0..3i64)).max(1),
            _ => {}
        }
    }
    values
}

/// Rough in-memory size of one row of `table`, used to turn delta
/// fractions into byte annotations.
fn avg_row_bytes(table: &Table) -> u64 {
    if table.num_rows() == 0 {
        return 0;
    }
    table.byte_size() / table.num_rows() as u64
}

/// Returns the byte size a delta of `fraction` of `table` would have —
/// handy for sizing Memory Catalog budgets in tests and benches.
pub fn delta_fraction_bytes(table: &Table, fraction: f64) -> u64 {
    (avg_row_bytes(table) as f64 * table.num_rows() as f64 * fraction) as u64
}

/// Annotates every node of a simulated workload with churn at a global
/// `delta_fraction` of its output (seeded jitter of ±50% per node), for
/// churn-heavy sim scenarios. Nodes keep their `delta_supported` flag.
pub fn churned(workload: &SimWorkload, delta_fraction: f64, seed: u64) -> SimWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = workload.graph.map(|_, node| {
        let jitter = rng.gen_range(50..150) as f64 / 100.0;
        let delta = (node.output_bytes as f64 * delta_fraction * jitter) as u64;
        let mut n = node.clone();
        n.delta_bytes = Some(delta.min(node.output_bytes));
        n
    });
    SimWorkload { graph }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcds::TinyTpcds;
    use sc_core::RefreshMode;
    use sc_sim::{SimConfig, SimNode, Simulator};

    #[test]
    fn insert_only_stream_is_seeded_and_sized() {
        let ds = TinyTpcds::generate(0.3, 7);
        let sales = ds.table("store_sales").unwrap();
        let spec = UpdateStreamSpec::inserts(0.05);
        let a = generate_delta(sales, &spec, 1);
        let b = generate_delta(sales, &spec, 1);
        let c = generate_delta(sales, &spec, 2);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, c, "different seed, different stream");
        assert!(!a.has_deletes());
        let expected = (sales.num_rows() as f64 * 0.05).round() as usize;
        assert_eq!(a.insert_rows(), expected);
    }

    #[test]
    fn mixed_stream_has_all_three_shapes() {
        let ds = TinyTpcds::generate(0.3, 7);
        let sales = ds.table("store_sales").unwrap();
        let spec = UpdateStreamSpec::mixed(0.02, 0.03, 0.01);
        let d = generate_delta(sales, &spec, 9);
        assert!(d.has_deletes());
        let n = sales.num_rows() as f64;
        // updates contribute to both sides.
        assert_eq!(
            d.delete_rows(),
            (n * 0.01).round() as usize + (n * 0.03).round() as usize
        );
        assert_eq!(
            d.insert_rows(),
            (n * 0.02).round() as usize + (n * 0.03).round() as usize
        );
        // Applying the delta keeps the row count consistent.
        let applied = d.apply(sales).unwrap();
        assert_eq!(
            applied.num_rows(),
            sales.num_rows() + d.insert_rows() - d.delete_rows()
        );
    }

    #[test]
    fn perturbation_preserves_keys() {
        let ds = TinyTpcds::generate(0.2, 3);
        let sales = ds.table("store_sales").unwrap();
        let items = ds.table("item").unwrap().num_rows() as i64;
        let d = generate_delta(sales, &UpdateStreamSpec::inserts(0.1), 4);
        let ins = &d.batches()[0].inserts;
        let col = ins.column_by_name("ss_item_sk").unwrap();
        for r in 0..ins.num_rows() {
            match col.value(r) {
                Value::Int64(sk) => assert!(sk >= 0 && sk < items, "key stays resolvable"),
                other => panic!("bad key {other:?}"),
            }
        }
    }

    #[test]
    fn empty_table_yields_empty_delta() {
        let empty = sc_engine::TableBuilder::new()
            .column("x", sc_engine::DataType::Int64)
            .build();
        let d = generate_delta(&empty, &UpdateStreamSpec::mixed(0.5, 0.5, 0.5), 1);
        assert!(d.is_empty());
    }

    #[test]
    fn delta_fraction_bytes_scales() {
        let ds = TinyTpcds::generate(0.3, 7);
        let sales = ds.table("store_sales").unwrap();
        let five = delta_fraction_bytes(sales, 0.05);
        let ten = delta_fraction_bytes(sales, 0.10);
        assert!(five > 0);
        assert!(ten > five);
        assert!(ten <= sales.byte_size());
    }

    #[test]
    fn churned_sim_workload_runs_incrementally() {
        const GIB: u64 = 1 << 30;
        let w = SimWorkload::from_parts(
            [
                SimNode::new("hub", 5.0, 4 * GIB, 8 * GIB),
                SimNode::new("agg", 2.0, GIB / 16, 0),
            ],
            [(0, 1)],
        )
        .unwrap();
        let churny = churned(&w, 0.05, 11);
        for v in churny.graph.node_ids() {
            let n = churny.graph.node(v);
            let d = n.delta_bytes.expect("annotated");
            assert!(d > 0 && d <= n.output_bytes);
        }
        let plan = sc_core::Plan::unoptimized(churny.graph.kahn_order());
        let cfg = SimConfig::paper(GIB);
        let full = Simulator::new(cfg.clone().with_refresh_mode(RefreshMode::AlwaysFull))
            .run(&churny, &plan)
            .unwrap();
        let inc = Simulator::new(cfg.with_refresh_mode(RefreshMode::AlwaysIncremental))
            .run(&churny, &plan)
            .unwrap();
        assert!(inc.total_s < full.total_s);
    }
}
