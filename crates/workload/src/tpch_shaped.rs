//! Deterministic **TPC-H-shaped** table generator for the scenario corpus:
//! a `lineitem` fact table with Zipf-skewed foreign keys into `part`,
//! `supplier`, `customer` and `orders` dimensions, laid out either as a
//! **star** (the fact carries a direct customer key) or a **snowflake**
//! (customers are only reachable through `orders`, one join deeper).
//!
//! TinyTpcds ([`crate::tpcds`]) draws keys uniformly, which makes every
//! join group the same size; real materialization workloads are skewed,
//! and skew is exactly what stresses a delta rule (a churn batch whose
//! inserts pile onto a few hot keys produces very uneven probe groups).
//! This generator fills that gap for the differential corpus — same
//! spirit, different shape, and seeded so that equal [`TpchSpec`]s emit
//! byte-identical tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sc_engine::{DataType, Table, TableBuilder, Value};

/// Parameters of a TPC-H-shaped dataset. Equal specs generate
/// byte-identical tables; every field is part of the corpus-file syntax
/// (`tables tpch seed=… fact=… …`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchSpec {
    /// Generator seed.
    pub seed: u64,
    /// `lineitem` row count.
    pub fact_rows: usize,
    /// `part` row count.
    pub parts: usize,
    /// `supplier` row count.
    pub suppliers: usize,
    /// `customer` row count.
    pub customers: usize,
    /// `orders` row count.
    pub orders: usize,
    /// Zipf exponent `s` for fact foreign keys (0 = uniform; ~1.2 is a
    /// realistic hot-key skew).
    pub zipf: f64,
    /// Snowflake layout: `lineitem` reaches `customer` only through
    /// `orders`. Star layout (false) adds a direct `l_custkey` column.
    pub snowflake: bool,
}

impl Default for TpchSpec {
    fn default() -> Self {
        TpchSpec {
            seed: 1,
            fact_rows: 1500,
            parts: 60,
            suppliers: 20,
            customers: 80,
            orders: 200,
            zipf: 1.1,
            snowflake: false,
        }
    }
}

impl TpchSpec {
    /// Names of the tables this spec generates, sorted.
    pub fn table_names(&self) -> Vec<String> {
        ["customer", "lineitem", "orders", "part", "supplier"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Generates all tables, sorted by name (deterministic per spec).
    pub fn generate(&self) -> Vec<(String, Table)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let part = part_table(self.parts, &mut rng);
        let supplier = supplier_table(self.suppliers, &mut rng);
        let customer = customer_table(self.customers, &mut rng);
        let cust_zipf = Zipf::new(self.customers, self.zipf);
        let orders = orders_table(self.orders, &cust_zipf, &mut rng);
        let lineitem = self.lineitem_table(&mut rng);
        vec![
            ("customer".to_string(), customer),
            ("lineitem".to_string(), lineitem),
            ("orders".to_string(), orders),
            ("part".to_string(), part),
            ("supplier".to_string(), supplier),
        ]
    }

    /// Writes every generated table into `disk`.
    pub fn load_into(&self, disk: &sc_engine::storage::DiskCatalog) -> sc_engine::Result<()> {
        for (name, table) in self.generate() {
            disk.write_table(&name, &table)?;
        }
        Ok(())
    }

    fn lineitem_table(&self, rng: &mut StdRng) -> Table {
        let order_keys = Zipf::new(self.orders, self.zipf);
        let part_keys = Zipf::new(self.parts, self.zipf);
        let supp_keys = Zipf::new(self.suppliers, self.zipf);
        let cust_keys = Zipf::new(self.customers, self.zipf);
        let mut b = TableBuilder::new()
            .column("l_orderkey", DataType::Int64)
            .column("l_partkey", DataType::Int64)
            .column("l_suppkey", DataType::Int64);
        if !self.snowflake {
            b = b.column("l_custkey", DataType::Int64);
        }
        let mut t = b
            .column("l_quantity", DataType::Int64)
            .column("l_extendedprice", DataType::Float64)
            .build();
        for _ in 0..self.fact_rows {
            let mut row = vec![
                Value::Int64(order_keys.sample(rng)),
                Value::Int64(part_keys.sample(rng)),
                Value::Int64(supp_keys.sample(rng)),
            ];
            if !self.snowflake {
                row.push(Value::Int64(cust_keys.sample(rng)));
            }
            row.push(Value::Int64(rng.gen_range(1..50)));
            row.push(Value::Float64((rng.gen_range(100..95000) as f64) / 100.0));
            t.push_row(row).expect("schema-consistent row");
        }
        t
    }
}

/// Zipf-distributed key sampler over `0..n`: weight of key `i` is
/// `1/(i+1)^s`, sampled by binary search over the precomputed CDF.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> i64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) as i64
    }
}

fn part_table(n: usize, rng: &mut StdRng) -> Table {
    let mut t = TableBuilder::new()
        .column("p_partkey", DataType::Int64)
        .column("p_brand", DataType::Utf8)
        .column("p_retailprice", DataType::Float64)
        .build();
    for i in 0..n as i64 {
        t.push_row(vec![
            Value::Int64(i),
            Value::Utf8(format!("Brand#{}", rng.gen_range(1..6))),
            Value::Float64((rng.gen_range(90000..200000) as f64) / 100.0),
        ])
        .expect("schema-consistent row");
    }
    t
}

fn supplier_table(n: usize, rng: &mut StdRng) -> Table {
    const NATIONS: [&str; 6] = ["FRANCE", "GERMANY", "JAPAN", "KENYA", "PERU", "UK"];
    let mut t = TableBuilder::new()
        .column("s_suppkey", DataType::Int64)
        .column("s_nation", DataType::Utf8)
        .build();
    for i in 0..n as i64 {
        t.push_row(vec![
            Value::Int64(i),
            Value::Utf8(NATIONS[rng.gen_range(0..NATIONS.len())].to_string()),
        ])
        .expect("schema-consistent row");
    }
    t
}

fn customer_table(n: usize, rng: &mut StdRng) -> Table {
    const SEGMENTS: [&str; 5] = [
        "AUTOMOBILE",
        "BUILDING",
        "FURNITURE",
        "HOUSEHOLD",
        "MACHINERY",
    ];
    let mut t = TableBuilder::new()
        .column("c_custkey", DataType::Int64)
        .column("c_segment", DataType::Utf8)
        .build();
    for i in 0..n as i64 {
        t.push_row(vec![
            Value::Int64(i),
            Value::Utf8(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string()),
        ])
        .expect("schema-consistent row");
    }
    t
}

fn orders_table(n: usize, cust: &Zipf, rng: &mut StdRng) -> Table {
    let mut t = TableBuilder::new()
        .column("o_orderkey", DataType::Int64)
        .column("o_custkey", DataType::Int64)
        .column("o_orderdate", DataType::Date)
        .build();
    for i in 0..n as i64 {
        t.push_row(vec![
            Value::Int64(i),
            Value::Int64(cust.sample(rng)),
            Value::Date(9131 + rng.gen_range(0..2557)), // 1995-01-01 .. ~2001
        ])
        .expect("schema-consistent row");
    }
    t
}

/// The generated half of the committed corpus: `(file name, contents)`
/// pairs of TPC-H-shaped `.scn` cases. A corpus test regenerates these and
/// compares them byte-for-byte against `tests/corpus/`, so the committed
/// files stay reviewable *and* provably in sync with the generator
/// (regenerate with `SC_CORPUS_REGEN=1`).
pub fn generated_corpus() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (i, (layout, zipf, mode, churn)) in [
        // Star layouts: direct fact→dimension joins, varying skew and
        // policy; churn hits the fact, the fact + a dimension
        // (correlated), or nothing.
        ("star", 0.0, "always_incremental", FactOnly),
        ("star", 1.1, "always_incremental", FactOnly),
        ("star", 1.6, "always_incremental", FactAndDimension),
        ("star", 1.1, "always_full", FactOnly),
        ("star", 1.3, "auto", FactOnly),
        // Snowflake layouts: customer only reachable through orders, so
        // correlated orders churn hits a build side (static churn).
        ("snowflake", 1.1, "always_incremental", FactOnly),
        ("snowflake", 1.4, "always_incremental", FactAndDimension),
        ("snowflake", 0.8, "always_full", FactAndDimension),
        ("snowflake", 1.2, "auto", NoChurn),
        ("snowflake", 1.6, "always_incremental", FactOnly),
    ]
    .into_iter()
    .enumerate()
    {
        let name = format!("gen_tpch_{:02}_{layout}_{mode}.scn", i + 1);
        out.push((name, tpch_case(i as u64, layout, zipf, mode, churn)));
    }
    out
}

#[derive(Clone, Copy, PartialEq)]
enum ChurnShape {
    FactOnly,
    FactAndDimension,
    NoChurn,
}
use ChurnShape::*;

fn tpch_case(i: u64, layout: &str, zipf: f64, mode: &str, churn: ChurnShape) -> String {
    let seed = 100 + i;
    let snow = layout == "snowflake";
    let mut s = String::new();
    s.push_str(&format!(
        "# Generated TPC-H-shaped case {i:02}: {layout} layout, zipf={zipf}, {mode}.\n\
         # Regenerate with SC_CORPUS_REGEN=1 (tests/corpus_sweep.rs); do not hand-edit.\n\
         scenario gen_tpch_{:02}_{layout}\n\
         budget 8388608\n\
         mode {mode}\n\
         tables tpch seed={seed} fact=1200 parts=40 suppliers=15 customers=60 orders=150 zipf={zipf}{}\n\n",
        i + 1,
        if snow { " snowflake" } else { "" },
    ));
    // The MV DAG: a priced-fact spine, an aggregate over it, a
    // dimension-only MV, and a distinct over a small projection.
    s.push_str(
        "mv priced = lineitem | join part on l_partkey=p_partkey \
         | project l_orderkey, l_suppkey, l_quantity, l_extendedprice, p_brand\n",
    );
    s.push_str("mv brand_volume = priced | agg by p_brand sum l_extendedprice as revenue, count l_quantity as n\n");
    s.push_str("mv big_parts = part | filter p_retailprice > 1500.0\n");
    s.push_str("mv supplier_mix = lineitem | join supplier on l_suppkey=s_suppkey | project s_nation | distinct\n");
    if snow {
        s.push_str("mv order_lines = lineitem | join orders on l_orderkey=o_orderkey\n");
    } else {
        s.push_str("mv customer_lines = lineitem | join customer on l_custkey=c_custkey | project c_segment, l_extendedprice\n");
    }
    s.push('\n');
    match churn {
        FactOnly => {
            s.push_str(&format!("churn lineitem inserts 0.04 seed {}\n", seed + 7));
            s.push_str(&format!("churn lineitem inserts 0.03 seed {}\n", seed + 8));
        }
        FactAndDimension => {
            // Correlated churn: the fact and a dimension move together,
            // the way new orders arrive alongside their line items.
            let dim = if snow { "orders" } else { "customer" };
            s.push_str(&format!(
                "churn lineitem,{dim} inserts 0.05 seed {}\n",
                seed + 7
            ));
            s.push_str(&format!("churn lineitem inserts 0.02 seed {}\n", seed + 8));
        }
        NoChurn => {}
    }
    s.push('\n');
    // Expectations: only emit decisions that hold by construction (see
    // the mode table in docs/CORPUS.md); Auto cost-model outcomes are
    // data-dependent and stay unpinned.
    match (mode, churn) {
        ("always_full", _) => {
            for mv in ["priced", "brand_volume", "big_parts", "supplier_mix"] {
                s.push_str(&format!("expect {mv} full full_policy\n"));
            }
        }
        ("always_incremental", FactOnly) => {
            s.push_str("expect priced incremental delta_applied\n");
            s.push_str("expect brand_volume incremental delta_applied\n");
            s.push_str("expect big_parts skipped no_churn\n");
            s.push_str("expect supplier_mix incremental delta_applied\n");
        }
        ("always_incremental", FactAndDimension) => {
            // The churned dimension is a join build side somewhere:
            // that join recomputes (static churn), the rest still
            // maintain.
            s.push_str("expect big_parts skipped no_churn\n");
            s.push_str("expect supplier_mix incremental delta_applied\n");
            if snow {
                s.push_str("expect order_lines full static_churn\n");
                s.push_str("expect priced incremental delta_applied\n");
            } else {
                s.push_str("expect customer_lines full static_churn\n");
                s.push_str("expect priced incremental delta_applied\n");
            }
        }
        (_, NoChurn) => {
            // An empty churn schedule means there is no delta log at all,
            // and the controller recomputes everything so profiling stays
            // meaningful — nodes are Full(FullPolicy), not Skipped.
            let fifth = if snow {
                "order_lines"
            } else {
                "customer_lines"
            };
            for mv in ["priced", "brand_volume", "big_parts", "supplier_mix", fifth] {
                s.push_str(&format!("expect {mv} full full_policy\n"));
            }
        }
        _ => {}
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_spec() {
        let spec = TpchSpec::default();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        let c = TpchSpec {
            seed: 2,
            ..TpchSpec::default()
        }
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn star_vs_snowflake_changes_fact_schema() {
        let star = TpchSpec::default().generate();
        let snow = TpchSpec {
            snowflake: true,
            ..TpchSpec::default()
        }
        .generate();
        let fact = |ts: &[(String, Table)]| {
            ts.iter()
                .find(|(n, _)| n == "lineitem")
                .map(|(_, t)| t.num_columns())
                .unwrap()
        };
        assert_eq!(fact(&star), fact(&snow) + 1);
    }

    #[test]
    fn zipf_skews_hot_keys() {
        let skewed = TpchSpec {
            zipf: 1.6,
            ..TpchSpec::default()
        };
        let tables = skewed.generate();
        let (_, lineitem) = tables.iter().find(|(n, _)| n == "lineitem").unwrap();
        let col = lineitem.column_by_name("l_partkey").unwrap();
        let mut zero_hits = 0usize;
        for row in 0..lineitem.num_rows() {
            if col.value(row) == Value::Int64(0) {
                zero_hits += 1;
            }
        }
        // Key 0 is the hottest: with s=1.6 over 60 parts it should draw
        // far more than the uniform share (1/60 ≈ 1.7%).
        assert!(
            zero_hits as f64 > lineitem.num_rows() as f64 * 0.10,
            "hot key drew only {zero_hits}/{} rows",
            lineitem.num_rows()
        );
    }

    #[test]
    fn foreign_keys_resolve() {
        let spec = TpchSpec {
            snowflake: true,
            ..TpchSpec::default()
        };
        let tables = spec.generate();
        let get = |name: &str| &tables.iter().find(|(n, _)| n == name).unwrap().1;
        let orders = get("orders").num_rows() as i64;
        let fact = get("lineitem");
        let col = fact.column_by_name("l_orderkey").unwrap();
        for row in 0..fact.num_rows() {
            match col.value(row) {
                Value::Int64(k) => assert!((0..orders).contains(&k)),
                other => panic!("bad key {other:?}"),
            }
        }
    }

    #[test]
    fn generated_corpus_is_stable_and_parseable_shape() {
        let a = generated_corpus();
        let b = generated_corpus();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        for (name, text) in &a {
            assert!(name.ends_with(".scn"));
            assert!(text.contains("scenario gen_tpch_"), "{name} missing header");
            assert!(text.contains("tables tpch "), "{name} missing tables line");
        }
    }
}
