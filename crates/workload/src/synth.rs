//! The §VI-H synthetic workload generator.
//!
//! Two components, mirroring the paper:
//!
//! 1. a **DAG generator** producing stage-structured ("Spark-shaped")
//!    dependency graphs parameterized by node count, height/width ratio,
//!    maximum out-degree and per-stage node-count standard deviation;
//! 2. a **Markov chain over relational operators** that assigns each node
//!    an operation (JOIN, AGG, …), from which output sizes and compute
//!    costs are derived. The transition probabilities are hardcoded from
//!    an offline analysis of TPC-DS and Spider query structures (the paper
//!    trains the chain on the same corpora); root sizes are sampled from
//!    the 100 GB TPC-DS table size distribution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sc_sim::{SimNode, SimWorkload};

/// Relational operator kinds assigned by the Markov chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Base-table scan (roots only).
    Scan,
    /// Hash join.
    Join,
    /// Aggregation.
    Agg,
    /// Filter.
    Filter,
    /// Projection.
    Project,
    /// Union.
    Union,
}

impl Op {
    /// Output size as a fraction of combined input size (joins can grow).
    fn size_factor(self) -> f64 {
        match self {
            Op::Scan => 1.0, // handled separately
            Op::Join => 1.0,
            Op::Agg => 0.08,
            Op::Filter => 0.35,
            Op::Project => 0.6,
            Op::Union => 1.0,
        }
    }

    /// Effective operator throughput, bytes/second, used to derive compute
    /// time from bytes processed.
    fn throughput_bps(self) -> f64 {
        match self {
            Op::Scan => 2.0e9,
            Op::Join => 0.2e9,
            Op::Agg => 0.3e9,
            Op::Filter => 1.0e9,
            Op::Project => 1.5e9,
            Op::Union => 3.0e9,
        }
    }

    /// Markov transition row: distribution of a child's operator given
    /// this node's operator.
    fn transitions(self) -> &'static [(Op, f64)] {
        match self {
            Op::Scan => &[
                (Op::Join, 0.45),
                (Op::Filter, 0.30),
                (Op::Agg, 0.15),
                (Op::Project, 0.10),
            ],
            Op::Join => &[
                (Op::Agg, 0.35),
                (Op::Join, 0.25),
                (Op::Filter, 0.20),
                (Op::Project, 0.20),
            ],
            Op::Filter => &[
                (Op::Join, 0.40),
                (Op::Agg, 0.30),
                (Op::Project, 0.20),
                (Op::Union, 0.10),
            ],
            Op::Agg => &[
                (Op::Join, 0.30),
                (Op::Project, 0.30),
                (Op::Union, 0.20),
                (Op::Agg, 0.20),
            ],
            Op::Project => &[
                (Op::Join, 0.35),
                (Op::Agg, 0.35),
                (Op::Union, 0.15),
                (Op::Filter, 0.15),
            ],
            Op::Union => &[(Op::Agg, 0.40), (Op::Join, 0.30), (Op::Project, 0.30)],
        }
    }

    fn sample_child(self, rng: &mut StdRng) -> Op {
        let row = self.transitions();
        let mut x: f64 = rng.gen();
        for &(op, p) in row {
            if x < p {
                return op;
            }
            x -= p;
        }
        row.last().expect("non-empty transition row").0
    }
}

/// Table sizes (bytes) of the 100 GB TPC-DS dataset, used as the root-size
/// sampling distribution (paper: "sizes of nodes with no parents are
/// randomly sampled from table sizes in the 100GB TPC-DS dataset").
pub const TPCDS_100GB_TABLE_BYTES: &[u64] = &[
    37_000_000_000, // store_sales
    28_000_000_000, // catalog_sales
    14_000_000_000, // web_sales
    4_900_000_000,  // inventory
    3_200_000_000,  // store_returns
    2_300_000_000,  // catalog_returns
    1_100_000_000,  // web_returns
    1_300_000_000,  // customer
    800_000_000,    // customer_demographics
    60_000_000,     // item
    10_000_000,     // date_dim
    5_000_000,      // store
];

/// Parameters of the synthetic generator (the axes of Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorParams {
    /// Total node count (the paper sweeps 25–100).
    pub nodes: usize,
    /// DAG height divided by width (stages vs nodes-per-stage).
    pub height_width_ratio: f64,
    /// Maximum out-degree; each node's edge count is uniform in
    /// `[0, max_outdegree]`.
    pub max_outdegree: usize,
    /// Standard deviation of per-stage node counts.
    pub stage_stdev: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorParams {
    /// The reference point of Figures 13/14: 100 nodes, ratio 1, max
    /// out-degree 4, stage StDev 1.
    fn default() -> Self {
        GeneratorParams {
            nodes: 100,
            height_width_ratio: 1.0,
            max_outdegree: 4,
            stage_stdev: 1.0,
            seed: 0x5c,
        }
    }
}

/// Deterministic synthetic workload generator.
#[derive(Debug, Clone)]
pub struct SynthGenerator {
    params: GeneratorParams,
}

impl SynthGenerator {
    /// Creates a generator.
    pub fn new(params: GeneratorParams) -> Self {
        SynthGenerator { params }
    }

    /// The parameters.
    pub fn params(&self) -> &GeneratorParams {
        &self.params
    }

    /// Stage sizes: height/width follow the requested ratio, counts are
    /// jittered by `stage_stdev` and adjusted to sum to `nodes`.
    fn stage_sizes(&self, rng: &mut StdRng) -> Vec<usize> {
        let n = self.params.nodes.max(2);
        let ratio = self.params.height_width_ratio.max(0.01);
        // height * width = n, height / width = ratio.
        let width = (n as f64 / ratio).sqrt().round().max(1.0) as usize;
        let height = n.div_ceil(width).max(2);

        let mut sizes = Vec::with_capacity(height);
        let mut remaining = n as i64;
        for s in 0..height {
            let stages_left = (height - s) as i64;
            let c = if stages_left == 1 {
                remaining // the last stage absorbs the remainder exactly
            } else {
                let mean = remaining as f64 / stages_left as f64;
                let jitter = gaussian(rng) * self.params.stage_stdev;
                let c = (mean + jitter).round() as i64;
                c.clamp(1, remaining - (stages_left - 1)) // leave ≥1 per stage
            };
            sizes.push(c as usize);
            remaining -= c;
        }
        debug_assert_eq!(sizes.iter().sum::<usize>(), n);
        sizes
    }

    /// Generates one workload.
    pub fn generate(&self) -> SimWorkload {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let stages = self.stage_sizes(&mut rng);

        // Node ids stage by stage.
        let mut stage_nodes: Vec<Vec<usize>> = Vec::with_capacity(stages.len());
        let mut next_id = 0usize;
        for &count in &stages {
            stage_nodes.push((next_id..next_id + count).collect());
            next_id += count;
        }
        let n = next_id;

        // Edges: each node fans out to `uniform[0, max_outdegree]` children
        // in the next stage; orphans in stage s+1 get one parent each.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for s in 0..stage_nodes.len() - 1 {
            let next = &stage_nodes[s + 1];
            let mut has_parent = vec![false; next.len()];
            for &u in &stage_nodes[s] {
                let degree = rng.gen_range(0..=self.params.max_outdegree).min(next.len());
                let mut picked: Vec<usize> = Vec::with_capacity(degree);
                while picked.len() < degree {
                    let c = rng.gen_range(0..next.len());
                    if !picked.contains(&c) {
                        picked.push(c);
                    }
                }
                for c in picked {
                    edges.push((u, next[c]));
                    has_parent[c] = true;
                }
            }
            for (c, &covered) in has_parent.iter().enumerate() {
                if !covered {
                    let u = stage_nodes[s][rng.gen_range(0..stage_nodes[s].len())];
                    edges.push((u, next[c]));
                }
            }
        }

        // Assign operators by walking stages with the Markov chain, then
        // derive sizes and compute from the ops.
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &edges {
            parents[b].push(a);
        }
        let mut ops: Vec<Op> = vec![Op::Scan; n];
        let mut out_bytes: Vec<u64> = vec![0; n];
        let mut base_bytes: Vec<u64> = vec![0; n];
        let mut compute: Vec<f64> = vec![0.0; n];
        for stage in &stage_nodes {
            for &v in stage {
                if parents[v].is_empty() {
                    ops[v] = Op::Scan;
                    let table =
                        TPCDS_100GB_TABLE_BYTES[rng.gen_range(0..TPCDS_100GB_TABLE_BYTES.len())];
                    base_bytes[v] = table;
                    let selectivity = rng.gen_range(0.02..0.3);
                    out_bytes[v] = ((table as f64) * selectivity) as u64;
                    compute[v] = table as f64 / Op::Scan.throughput_bps();
                } else {
                    let op = ops[parents[v][0]].sample_child(&mut rng);
                    ops[v] = op;
                    let input: u64 = parents[v].iter().map(|&p| out_bytes[p]).sum();
                    // Joins are key-matched, so output size tracks the
                    // larger side, not the sum; unions concatenate.
                    let size_base = if op == Op::Union {
                        input
                    } else {
                        parents[v].iter().map(|&p| out_bytes[p]).max().unwrap_or(0)
                    };
                    let factor = op.size_factor() * rng.gen_range(0.6..1.2);
                    out_bytes[v] = ((size_base as f64 * factor) as u64).max(1024);
                    compute[v] = input as f64 / op.throughput_bps();
                }
            }
        }

        let nodes_vec: Vec<SimNode> = (0..n)
            .map(|v| {
                SimNode::new(
                    format!("{:?}{}", ops[v], v).to_lowercase(),
                    compute[v],
                    out_bytes[v],
                    base_bytes[v],
                )
            })
            .collect();
        SimWorkload::from_parts(nodes_vec, edges).expect("stage edges are forward-only")
    }
}

/// Standard normal sample (Box–Muller; avoids an extra dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(params: GeneratorParams) -> SimWorkload {
        SynthGenerator::new(params).generate()
    }

    #[test]
    fn node_count_is_exact() {
        for n in [10, 25, 50, 100] {
            let w = gen(GeneratorParams {
                nodes: n,
                ..Default::default()
            });
            assert_eq!(w.len(), n);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen(GeneratorParams::default());
        let b = gen(GeneratorParams::default());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        for (x, y) in a.graph.payloads().iter().zip(b.graph.payloads()) {
            assert_eq!(x, y);
        }
        let c = gen(GeneratorParams {
            seed: 999,
            ..Default::default()
        });
        assert!(
            a.graph.edge_count() != c.graph.edge_count()
                || a.graph.payloads() != c.graph.payloads(),
            "different seeds should differ"
        );
    }

    #[test]
    fn height_width_ratio_is_respected() {
        let tall = gen(GeneratorParams {
            nodes: 64,
            height_width_ratio: 4.0,
            stage_stdev: 0.0,
            ..Default::default()
        });
        let flat = gen(GeneratorParams {
            nodes: 64,
            height_width_ratio: 0.25,
            stage_stdev: 0.0,
            ..Default::default()
        });
        assert!(tall.graph.height() > flat.graph.height());
        assert!(tall.graph.width() < flat.graph.width());
    }

    #[test]
    fn every_non_root_has_a_parent_and_ops_are_consistent() {
        let w = gen(GeneratorParams::default());
        let roots = w.graph.roots();
        for v in w.graph.node_ids() {
            let node = w.graph.node(v);
            if roots.contains(&v) {
                assert!(node.base_read_bytes > 0, "roots read base tables");
                assert!(node.name.starts_with("scan"));
            } else {
                assert_eq!(node.base_read_bytes, 0);
                assert!(node.output_bytes >= 1024);
            }
        }
    }

    #[test]
    fn outdegree_bounded() {
        let p = GeneratorParams {
            max_outdegree: 2,
            ..Default::default()
        };
        let w = gen(p);
        // Generated fan-out edges are capped; orphan-fixing can add at
        // most a handful beyond the cap.
        for v in w.graph.node_ids() {
            assert!(
                w.graph.out_degree(v) <= 2 + 3,
                "node {v} out-degree too high"
            );
        }
    }

    #[test]
    fn stage_stdev_zero_gives_even_stages() {
        let g = SynthGenerator::new(GeneratorParams {
            nodes: 60,
            height_width_ratio: 1.0,
            stage_stdev: 0.0,
            max_outdegree: 4,
            seed: 1,
        });
        let mut rng = StdRng::seed_from_u64(1);
        let sizes = g.stage_sizes(&mut rng);
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "even split expected, got {sizes:?}");
    }

    #[test]
    fn sizes_shrink_down_aggregation_chains() {
        // Aggregations must produce small outputs: total leaf bytes are a
        // small fraction of total root bytes in expectation.
        let w = gen(GeneratorParams {
            nodes: 80,
            seed: 3,
            ..Default::default()
        });
        let roots: u64 = w
            .graph
            .roots()
            .iter()
            .map(|&v| w.graph.node(v).output_bytes)
            .sum();
        let leaves: u64 = w
            .graph
            .leaves()
            .iter()
            .map(|&v| w.graph.node(v).output_bytes)
            .sum();
        assert!(
            leaves < roots * 3,
            "leaf bytes {leaves} vs root bytes {roots}"
        );
    }

    #[test]
    fn markov_rows_sum_to_one() {
        for op in [
            Op::Scan,
            Op::Join,
            Op::Agg,
            Op::Filter,
            Op::Project,
            Op::Union,
        ] {
            let sum: f64 = op.transitions().iter().map(|&(_, p)| p).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{op:?} row sums to {sum}");
        }
    }

    #[test]
    fn workload_is_usable_by_optimizer() {
        use sc_core::ScOptimizer;
        use sc_sim::{SimConfig, Simulator};
        let w = gen(GeneratorParams {
            nodes: 40,
            seed: 7,
            ..Default::default()
        });
        let config = SimConfig::paper(1_600_000_000);
        let problem = w.problem(&config).unwrap();
        let plan = ScOptimizer::default().optimize(&problem).unwrap();
        let sim = Simulator::new(config);
        let base = sim.run_unoptimized(&w).unwrap();
        let sc = sim.run(&w, &plan).unwrap();
        assert!(sc.total_s <= base.total_s + 1e-9);
    }
}
