//! Simulation errors.

use std::fmt;

/// Failure of a simulated refresh run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The workload graph or execution order is invalid.
    Dag(sc_dag::DagError),
    /// A flagged node did not fit the Memory Catalog while
    /// [`crate::SimConfig::fallback_on_memory_pressure`] is disabled
    /// (mirrors the engine's strict-failure mode).
    MemoryBudgetExceeded {
        /// Bytes the admission needed.
        requested: u64,
        /// Modeled catalog usage at that point.
        used: u64,
        /// The configured budget `M`.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Dag(e) => write!(f, "dag: {e}"),
            SimError::MemoryBudgetExceeded {
                requested,
                used,
                budget,
            } => write!(
                f,
                "memory catalog budget exceeded: requested {requested} B with {used}/{budget} B used"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<sc_dag::DagError> for SimError {
    fn from(e: sc_dag::DagError) -> Self {
        SimError::Dag(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimError>;
