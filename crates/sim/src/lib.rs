//! # sc-sim — deterministic refresh-run simulation
//!
//! The paper evaluates S/C on TPC-DS datasets up to 1 TB on a Presto
//! cluster. Those scales are not reproducible on a laptop, so this crate
//! replays refresh runs *analytically*: given a workload DAG annotated with
//! per-node compute seconds and output sizes, plus a calibrated cost model
//! (§VI-A: 519.8 MB/s disk read, 358.9 MB/s write, 175 µs latency), it
//! simulates the exact controller semantics of `sc-engine`:
//!
//! * one compute lane executing nodes in plan order (the paper issues MV
//!   statements sequentially), or — with [`SimConfig::with_lanes`] — a
//!   discrete-event mirror of the engine's multi-lane executor;
//! * a storage write channel shared by blocking and background
//!   materializations (FIFO, bandwidth-limited);
//! * flagged nodes created in memory, materialized in the background, and
//!   released once all consumers executed *and* the write landed;
//! * strict Memory Catalog accounting with fallback-to-disk on pressure.
//!
//! The simulator also models the two §VI baselines that are systems rather
//! than algorithms: the DBMS **LRU result cache** (Figure 9) via
//! [`Simulator::run_lru`], and **multi-worker clusters** (Table V) via
//! [`ClusterModel`].
//!
//! ```
//! use sc_sim::{SimNode, SimWorkload, Simulator, SimConfig};
//! use sc_core::{ScOptimizer, Plan};
//!
//! let w = SimWorkload::from_parts(
//!     [
//!         SimNode::new("mv1", 2.0, 4 << 30, 8 << 30),
//!         SimNode::new("mv2", 1.0, 1 << 30, 0),
//!         SimNode::new("mv3", 1.0, 1 << 30, 0),
//!     ],
//!     [(0, 1), (0, 2)],
//! )
//! .unwrap();
//! let config = SimConfig::paper(2 << 30); // 2 GiB Memory Catalog
//! let problem = w.problem(&config).unwrap();
//! let plan = ScOptimizer::default().optimize(&problem).unwrap();
//!
//! let sim = Simulator::new(config);
//! let baseline = sim.run_unoptimized(&w).unwrap();
//! let optimized = sim.run(&w, &plan).unwrap();
//! assert!(optimized.total_s < baseline.total_s);
//! ```

#![warn(missing_docs)]

mod cluster;
mod error;
mod lru;
mod report;
mod simulator;
mod workload;

pub use cluster::ClusterModel;
pub use error::{Result, SimError};
pub use report::{NodeTimeline, SimReport};
pub use simulator::{SimConfig, Simulator};
pub use workload::{SimNode, SimWorkload};
