//! Cluster scaling model for the §VI-G experiments (Table V).
//!
//! Fitting Amdahl's law to the paper's published no-optimization runtimes
//! (1528 s / 868 s / 656 s / 546 s / 487 s for 1–5 workers) gives a
//! parallel fraction of ≈ 0.865: runtime(N) = serial + parallel / N with
//! serial ≈ 208 s of 1528 s. The simulator realizes this by scaling
//! per-node compute and I/O by the Amdahl factor while the per-node
//! overhead stays fixed (coordination does not parallelize).

use serde::{Deserialize, Serialize};

use crate::simulator::SimConfig;

/// Multi-worker scaling of a [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterModel {
    /// Number of worker nodes.
    pub workers: usize,
    /// Fraction of per-node work that parallelizes across workers.
    pub parallel_fraction: f64,
}

impl ClusterModel {
    /// A cluster with the paper-fitted parallel fraction.
    pub fn new(workers: usize) -> Self {
        ClusterModel {
            workers: workers.max(1),
            parallel_fraction: 0.865,
        }
    }

    /// Amdahl speedup factor for this cluster: how many times faster one
    /// node's work completes.
    pub fn speedup_factor(&self) -> f64 {
        let s = 1.0 - self.parallel_fraction;
        let p = self.parallel_fraction;
        1.0 / (s + p / self.workers as f64)
    }

    /// Applies the scaling to a single-node configuration.
    pub fn apply(&self, base: &SimConfig) -> SimConfig {
        let f = self.speedup_factor();
        let mut cfg = base.clone();
        cfg.compute_scale = base.compute_scale * f;
        cfg.io_scale = base.io_scale * f;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_factor_matches_paper_ratios() {
        // Paper Table V no-opt runtimes: 1528, 868, 656, 546, 487.
        let paper = [1528.0, 868.0, 656.0, 546.0, 487.0];
        for (i, &t) in paper.iter().enumerate() {
            let m = ClusterModel::new(i + 1);
            let predicted = paper[0] / m.speedup_factor();
            let err = (predicted - t).abs() / t;
            assert!(
                err < 0.05,
                "N={} predicted {predicted:.0} vs paper {t} ({err:.3})",
                i + 1
            );
        }
    }

    #[test]
    fn single_worker_is_identity() {
        let m = ClusterModel::new(1);
        assert!((m.speedup_factor() - 1.0).abs() < 1e-12);
        let base = SimConfig::paper(1 << 30);
        assert_eq!(m.apply(&base), base);
    }

    #[test]
    fn zero_workers_clamped() {
        assert_eq!(ClusterModel::new(0).workers, 1);
    }

    #[test]
    fn scaling_is_monotone_but_sublinear() {
        let f2 = ClusterModel::new(2).speedup_factor();
        let f5 = ClusterModel::new(5).speedup_factor();
        assert!(f2 > 1.0 && f5 > f2);
        assert!(f5 < 5.0);
    }
}
