use serde::{Deserialize, Serialize};

use sc_core::{MvMeta, Problem};
use sc_dag::Dag;

use crate::simulator::SimConfig;

/// One simulated MV update.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimNode {
    /// Name (for reports).
    pub name: String,
    /// Pure operator time on one worker, seconds (excludes all I/O).
    pub compute_s: f64,
    /// Output (intermediate table) size in bytes — the optimizer's `si`.
    pub output_bytes: u64,
    /// Bytes read from *base tables* (external storage that is never a
    /// candidate for the Memory Catalog). Parent MV outputs are read in
    /// addition to this.
    pub base_read_bytes: u64,
    /// Size of the node's output delta under the churn scenario being
    /// simulated. `None` disables delta tracking for this node (it is
    /// always recomputed, the pre-incremental behavior); `Some(0)` means
    /// nothing reaching the node changed, so it can be skipped.
    pub delta_bytes: Option<u64>,
    /// Whether the node's operators support incremental maintenance
    /// (mirrors the engine's `LogicalPlan::incremental_support`). Only
    /// consulted when `delta_bytes` is set.
    pub delta_supported: bool,
    /// Whether the node publishes an output delta its consumers can
    /// maintain from. Row-wise chains publish; aggregate-merge nodes
    /// absorb their input delta but publish nothing, so their consumers
    /// recompute (mirror with [`SimNode::merge_only`]).
    pub delta_publishes: bool,
    /// Names of parent nodes feeding the *build* side of a delta-join
    /// spine (mirrors the engine's `IncrementalSupport::static_tables`):
    /// the node can maintain incrementally only while these parents are
    /// Skipped — a changed build side interleaves new join pairs into
    /// existing match groups, which no append-only delta reproduces, so
    /// the engine recomputes. Empty for join-free nodes.
    pub build_inputs: Vec<String>,
    /// Bytes of build-side inputs (dimension tables and static parents)
    /// the incremental path still reads in full to probe the propagated
    /// delta. A subset of the node's total input bytes; 0 for join-free
    /// nodes. Charged as disk read time on the incremental path and fed
    /// to `CostModel::incremental_refresh_wins` under `Auto`.
    pub build_read_bytes: u64,
    /// Whether the node's delta can be persisted as an **appended
    /// segment** on the engine's segmented storage (an insert-only,
    /// delta-publishing shape): the incremental path then skips the
    /// own-contents re-read and writes `delta_bytes` instead of
    /// `output_bytes`. Mirrors `publishes ∧ ¬deletes` in the engine's
    /// delta planner; fed to the cost model under `Auto`.
    pub delta_appendable: bool,
    /// Observed runtime-cost summary for this node's identity, mirroring
    /// the engine's observation sidecar (`ObservationStore::summary` on a
    /// fingerprint match). When set, `Auto` decisions consult it via
    /// [`sc_core::CostModel::incremental_refresh_wins_observed`] exactly
    /// as the engine does; `None` falls back to the static size-based
    /// estimates.
    pub observed_cost: Option<sc_core::ObservedNodeCost>,
}

impl SimNode {
    /// Creates a node (no delta tracking; see [`SimNode::with_delta`]).
    pub fn new(
        name: impl Into<String>,
        compute_s: f64,
        output_bytes: u64,
        base_read_bytes: u64,
    ) -> Self {
        SimNode {
            name: name.into(),
            compute_s,
            output_bytes,
            base_read_bytes,
            delta_bytes: None,
            delta_supported: true,
            delta_publishes: true,
            build_inputs: Vec::new(),
            build_read_bytes: 0,
            delta_appendable: false,
            observed_cost: None,
        }
    }

    /// Annotates the node with its output-delta size for a churn scenario.
    pub fn with_delta(mut self, delta_bytes: u64) -> Self {
        self.delta_bytes = Some(delta_bytes);
        self
    }

    /// Marks the node's delta as appendable on segmented storage (an
    /// insert-only, delta-publishing shape).
    pub fn appendable(mut self) -> Self {
        self.delta_appendable = true;
        self
    }

    /// Marks the node as a delta-join spine reading `read_bytes` of static
    /// build-side inputs, with `parents` naming any build-side *parent
    /// nodes* (base-table build inputs contribute bytes only — their
    /// staleness is folded into the node's own `delta_supported` flag by
    /// whoever builds the scenario).
    pub fn with_build_side(
        mut self,
        parents: impl IntoIterator<Item = impl Into<String>>,
        read_bytes: u64,
    ) -> Self {
        self.build_inputs = parents.into_iter().map(Into::into).collect();
        self.build_read_bytes = read_bytes;
        self
    }

    /// Marks the node's operators as not delta-maintainable (joins,
    /// sorts, …): it is recomputed in full whenever anything reaches it.
    pub fn full_only(mut self) -> Self {
        self.delta_supported = false;
        self
    }

    /// Marks the node as maintaining incrementally without publishing a
    /// delta (the engine's merge-aggregate shape): its consumers must
    /// recompute.
    pub fn merge_only(mut self) -> Self {
        self.delta_publishes = false;
        self
    }

    /// Attaches an observed runtime-cost summary (see
    /// [`SimNode::observed_cost`]).
    pub fn with_observed_cost(mut self, observed: sc_core::ObservedNodeCost) -> Self {
        self.observed_cost = Some(observed);
        self
    }
}

/// A simulated workload: a DAG of [`SimNode`]s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimWorkload {
    /// Dependency graph (edge `a -> b` means `b` reads `a`'s output).
    pub graph: Dag<SimNode>,
}

impl SimWorkload {
    /// Builds a workload from nodes and dependency edges.
    pub fn from_parts(
        nodes: impl IntoIterator<Item = SimNode>,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> sc_dag::Result<Self> {
        Ok(SimWorkload {
            graph: Dag::from_parts(nodes, edges)?,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Derives the S/C Opt instance for this workload under `config`:
    /// node sizes are output sizes, speedup scores follow §IV's formula
    /// with the config's bandwidths.
    pub fn problem(&self, config: &SimConfig) -> sc_core::Result<Problem> {
        let cost = config.cost_model();
        let annotated = self.graph.map(|v, n| {
            MvMeta::new(
                n.name.clone(),
                n.output_bytes,
                cost.speedup_score(n.output_bytes, self.graph.out_degree(v)),
            )
        });
        Problem::new(annotated, config.memory_budget)
    }

    /// Total bytes read from external storage by the unoptimized run
    /// (base reads plus every parent-output read).
    pub fn total_disk_read_bytes(&self) -> u64 {
        self.graph
            .node_ids()
            .map(|v| {
                let n = self.graph.node(v);
                let parent_bytes: u64 = self
                    .graph
                    .parents(v)
                    .iter()
                    .map(|&p| self.graph.node(p).output_bytes)
                    .sum();
                n.base_read_bytes + parent_bytes
            })
            .sum()
    }

    /// Total bytes written (every node's output).
    pub fn total_write_bytes(&self) -> u64 {
        self.graph.payloads().iter().map(|n| n.output_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> SimWorkload {
        SimWorkload::from_parts(
            [
                SimNode::new("a", 1.0, 100, 1000),
                SimNode::new("b", 2.0, 50, 0),
                SimNode::new("c", 3.0, 25, 200),
            ],
            [(0, 1), (0, 2), (1, 2)],
        )
        .unwrap()
    }

    #[test]
    fn byte_totals() {
        let w = w();
        // Reads: a: 1000; b: 100 (from a); c: 200 + 100 + 50.
        assert_eq!(w.total_disk_read_bytes(), 1000 + 100 + 350);
        assert_eq!(w.total_write_bytes(), 175);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }

    #[test]
    fn problem_derivation_scores_by_fanout() {
        let w = w();
        let config = SimConfig::paper(1 << 30);
        let p = w.problem(&config).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.size(sc_dag::NodeId(0)), 100);
        // a has 2 children, b has 1, c has 0: scores ordered accordingly
        // when sizes are comparable (a is also largest).
        assert!(p.score(sc_dag::NodeId(0)) > p.score(sc_dag::NodeId(1)));
        assert!(p.score(sc_dag::NodeId(1)) > 0.0);
    }

    #[test]
    fn cycle_rejected() {
        let r = SimWorkload::from_parts(
            [SimNode::new("a", 1.0, 1, 0), SimNode::new("b", 1.0, 1, 0)],
            [(0, 1), (1, 0)],
        );
        assert!(r.is_err());
    }
}
