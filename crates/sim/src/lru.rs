//! The DBMS **LRU cache** baseline of Figure 9: instead of S/C's planned
//! Memory Catalog, the engine's result cache is simply enlarged by the same
//! number of bytes. Intermediate tables enter the cache when written and on
//! (disk) reads; the least-recently-used entries are evicted to make room.
//! All writes remain blocking — an LRU cache cannot parallelize
//! materialization, which is one of the two effects it misses relative to
//! S/C (the other being any notion of scheduling).

use sc_dag::NodeId;

use crate::report::{NodeTimeline, SimReport};
use crate::simulator::Simulator;
use crate::workload::SimWorkload;

/// An LRU set of node outputs with byte capacity.
struct LruCache {
    capacity: u64,
    used: u64,
    /// Most-recent last.
    entries: Vec<(usize, u64)>,
}

impl LruCache {
    fn new(capacity: u64) -> Self {
        LruCache {
            capacity,
            used: 0,
            entries: Vec::new(),
        }
    }

    fn contains(&self, node: usize) -> bool {
        self.entries.iter().any(|&(n, _)| n == node)
    }

    fn touch(&mut self, node: usize) {
        if let Some(i) = self.entries.iter().position(|&(n, _)| n == node) {
            let e = self.entries.remove(i);
            self.entries.push(e);
        }
    }

    fn insert(&mut self, node: usize, bytes: u64) {
        if bytes > self.capacity {
            return; // too big to ever cache
        }
        if self.contains(node) {
            self.touch(node);
            return;
        }
        while self.used + bytes > self.capacity {
            let (_, evicted) = self.entries.remove(0);
            self.used -= evicted;
        }
        self.entries.push((node, bytes));
        self.used += bytes;
    }

    fn peak_candidate(&self) -> u64 {
        self.used
    }
}

impl Simulator {
    /// Simulates the LRU-cache baseline: sequential execution in `order`,
    /// blocking writes, with a result cache of `cache_bytes` serving
    /// intermediate-table reads at memory speed.
    pub fn run_lru(
        &self,
        workload: &SimWorkload,
        order: &[NodeId],
        cache_bytes: u64,
    ) -> crate::Result<SimReport> {
        let graph = &workload.graph;
        graph.validate_order(order)?;
        let cfg = self.config();
        let mut cache = LruCache::new(cache_bytes);
        let mut now = 0.0f64;
        let mut peak = 0u64;
        let mut timelines = Vec::with_capacity(graph.len());

        for &v in order {
            let node = graph.node(v);
            now += cfg.per_node_overhead_s;
            let start = now;
            let mut read_s = 0.0;
            let mut disk_read_s = 0.0;
            if node.base_read_bytes > 0 {
                let cost = self.lru_disk_read(node.base_read_bytes);
                read_s += cost;
                disk_read_s += cost;
            }
            for &parent in graph.parents(v) {
                let bytes = graph.node(parent).output_bytes;
                if cache.contains(parent.index()) {
                    cache.touch(parent.index());
                    read_s += bytes as f64 / cfg.mem_bps;
                } else {
                    let cost = self.lru_disk_read(bytes);
                    read_s += cost;
                    disk_read_s += cost;
                    cache.insert(parent.index(), bytes);
                    peak = peak.max(cache.peak_candidate());
                }
            }
            let compute_s = node.compute_s * (1.0 + cfg.compute_penalty) / cfg.compute_scale;
            let available = start + read_s + compute_s;
            // Blocking write; the fresh output enters the cache.
            let write_s =
                cfg.disk_latency_s + node.output_bytes as f64 / (cfg.disk_write_bps * cfg.io_scale);
            cache.insert(v.index(), node.output_bytes);
            peak = peak.max(cache.peak_candidate());
            now = available + write_s;

            timelines.push(NodeTimeline {
                name: node.name.clone(),
                mode: sc_core::NodeMode::Full,
                start_s: start,
                read_s,
                disk_read_s,
                compute_s,
                write_s,
                available_s: available,
                persisted_s: now,
                flagged: false,
                fell_back: false,
            });
        }
        Ok(SimReport {
            total_s: now,
            nodes: timelines,
            peak_memory_bytes: peak,
        })
    }

    fn lru_disk_read(&self, bytes: u64) -> f64 {
        let cfg = self.config();
        cfg.disk_latency_s + bytes as f64 / (cfg.disk_read_bps * cfg.io_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::SimConfig;
    use crate::workload::SimNode;

    const GIB: u64 = 1 << 30;

    fn chain() -> SimWorkload {
        SimWorkload::from_parts(
            [
                SimNode::new("a", 1.0, 2 * GIB, 4 * GIB),
                SimNode::new("b", 1.0, GIB, 0),
                SimNode::new("c", 1.0, GIB, 0),
            ],
            [(0, 1), (0, 2)],
        )
        .unwrap()
    }

    fn ids(xs: &[usize]) -> Vec<NodeId> {
        xs.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn cache_hits_speed_up_reads() {
        let w = chain();
        let sim = Simulator::new(SimConfig::paper(8 * GIB));
        let cold = sim.run_lru(&w, &ids(&[0, 1, 2]), 0).unwrap();
        let warm = sim.run_lru(&w, &ids(&[0, 1, 2]), 8 * GIB).unwrap();
        assert!(warm.total_s < cold.total_s);
        // With cache: both consumers of `a` read from memory.
        assert_eq!(warm.nodes[1].disk_read_s, 0.0);
        assert_eq!(warm.nodes[2].disk_read_s, 0.0);
    }

    #[test]
    fn lru_is_slower_than_sc_plan() {
        use sc_core::{FlagSet, Plan};
        let w = chain();
        let sim = Simulator::new(SimConfig::paper(8 * GIB));
        let lru = sim.run_lru(&w, &ids(&[0, 1, 2]), 8 * GIB).unwrap();
        let plan = Plan {
            order: ids(&[0, 1, 2]),
            flagged: FlagSet::from_nodes(3, [NodeId(0)]),
        };
        let sc = sim.run(&w, &plan).unwrap();
        // Same memory, but S/C additionally hides a's write.
        assert!(sc.total_s < lru.total_s);
    }

    #[test]
    fn eviction_respects_capacity() {
        let mut cache = LruCache::new(100);
        cache.insert(1, 60);
        cache.insert(2, 30);
        cache.insert(3, 30); // evicts 1
        assert!(!cache.contains(1));
        assert!(cache.contains(2));
        assert!(cache.contains(3));
        assert_eq!(cache.used, 60);
        // Touch 2, insert big: 3 is now LRU and goes first.
        cache.touch(2);
        cache.insert(4, 70);
        assert!(!cache.contains(3));
        assert!(cache.contains(2));
    }

    #[test]
    fn oversized_entries_never_cached() {
        let mut cache = LruCache::new(10);
        cache.insert(1, 100);
        assert!(!cache.contains(1));
        assert_eq!(cache.used, 0);
    }

    #[test]
    fn zero_cache_behaves_like_no_opt() {
        let w = chain();
        let sim = Simulator::new(SimConfig::paper(GIB));
        let lru = sim.run_lru(&w, &ids(&[0, 1, 2]), 0).unwrap();
        let base = sim.run_unoptimized(&w).unwrap();
        assert!((lru.total_s - base.total_s).abs() < 1e-9);
    }
}
