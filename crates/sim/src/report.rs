use serde::{Deserialize, Serialize};

use sc_core::NodeMode;

/// Simulated timeline of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeTimeline {
    /// Node name.
    pub name: String,
    /// How the node was brought up to date (full recompute, incremental
    /// delta maintenance, or skipped).
    pub mode: NodeMode,
    /// Simulation time at which the node started executing.
    pub start_s: f64,
    /// Seconds spent reading inputs (disk + memory).
    pub read_s: f64,
    /// Seconds of that spent on *external storage* reads only.
    pub disk_read_s: f64,
    /// Seconds of operator compute.
    pub compute_s: f64,
    /// Seconds of blocking write (0 when materialization was backgrounded).
    pub write_s: f64,
    /// Simulation time at which the node's *computation* finished (its
    /// output became available to consumers).
    pub available_s: f64,
    /// Simulation time at which the output was durable on storage.
    pub persisted_s: f64,
    /// Whether the node was kept in the Memory Catalog.
    pub flagged: bool,
    /// Whether a flagged node fell back to a blocking write under memory
    /// pressure.
    pub fell_back: bool,
}

/// Aggregate result of one simulated refresh run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// End-to-end time: all nodes executed *and* all outputs persisted.
    pub total_s: f64,
    /// Per-node timelines in execution order.
    pub nodes: Vec<NodeTimeline>,
    /// Peak simultaneous Memory Catalog usage, bytes.
    pub peak_memory_bytes: u64,
}

impl SimReport {
    /// Total table-read seconds (disk + memory) — the paper's "Table read"
    /// CPU metric in Table IV.
    pub fn total_read_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.read_s).sum()
    }

    /// Total external-storage read seconds.
    pub fn total_disk_read_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.disk_read_s).sum()
    }

    /// Total compute seconds.
    pub fn total_compute_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.compute_s).sum()
    }

    /// Total blocking write seconds.
    pub fn total_write_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.write_s).sum()
    }

    /// Total "query" seconds (read + compute + blocking write) — Table IV's
    /// "Query" row.
    pub fn total_query_s(&self) -> f64 {
        self.total_read_s() + self.total_compute_s() + self.total_write_s()
    }

    /// Number of nodes that fell back to blocking writes.
    pub fn fallbacks(&self) -> usize {
        self.nodes.iter().filter(|n| n.fell_back).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregations() {
        let node = |read, disk, compute, write, fell_back| NodeTimeline {
            name: "n".into(),
            mode: NodeMode::Full,
            start_s: 0.0,
            read_s: read,
            disk_read_s: disk,
            compute_s: compute,
            write_s: write,
            available_s: 0.0,
            persisted_s: 0.0,
            flagged: false,
            fell_back,
        };
        let r = SimReport {
            total_s: 10.0,
            nodes: vec![
                node(1.0, 0.5, 2.0, 3.0, false),
                node(0.5, 0.5, 1.0, 0.0, true),
            ],
            peak_memory_bytes: 42,
        };
        assert_eq!(r.total_read_s(), 1.5);
        assert_eq!(r.total_disk_read_s(), 1.0);
        assert_eq!(r.total_compute_s(), 3.0);
        assert_eq!(r.total_write_s(), 3.0);
        assert_eq!(r.total_query_s(), 7.5);
        assert_eq!(r.fallbacks(), 1);
    }
}
