use serde::{Deserialize, Serialize};

use sc_core::{CostModel, FlagSet, NodeMode, Plan, RefreshMode};

use crate::error::{Result, SimError};
use crate::report::{NodeTimeline, SimReport};
use crate::workload::SimWorkload;

/// Simulation parameters.
///
/// Bandwidths default to the paper's measured environment (§VI-A). The
/// scaling knobs model the §VI-G cluster experiments
/// (`compute_scale`/`io_scale`) and the §VI-D "Memory Catalog from query
/// memory" variant (`compute_penalty`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// External-storage read bandwidth, bytes/s.
    pub disk_read_bps: f64,
    /// External-storage write bandwidth, bytes/s.
    pub disk_write_bps: f64,
    /// Memory Catalog bandwidth, bytes/s.
    pub mem_bps: f64,
    /// Fixed storage access latency, seconds.
    pub disk_latency_s: f64,
    /// Memory Catalog size `M`, bytes.
    pub memory_budget: u64,
    /// Node compute times are divided by this (cluster speedup).
    pub compute_scale: f64,
    /// Storage bandwidths are multiplied by this (cluster has more disks).
    pub io_scale: f64,
    /// Fixed serial overhead added per node (query launch, coordination);
    /// does not shrink with cluster size.
    pub per_node_overhead_s: f64,
    /// Relative compute slowdown from shrinking DBMS query memory to make
    /// room for the Memory Catalog (0.0 when using spare memory).
    pub compute_penalty: f64,
    /// Number of compute lanes executing DAG nodes concurrently. `1` is
    /// the paper's sequential controller; larger values mirror the
    /// engine's multi-lane executor (nodes start as soon as all
    /// dependencies are readable and a lane is free, flag admission
    /// follows plan order).
    pub lanes: usize,
    /// Multi-lane run-ahead window override; `None` derives it from the
    /// lane count via [`sc_core::run_ahead_window`] (mirrors
    /// `RefreshConfig::run_ahead_window` in the engine).
    pub run_ahead_window: Option<usize>,
    /// Mirror of the engine's `ControllerConfig::fallback_on_memory_pressure`:
    /// when false, a flagged node that does not fit the Memory Catalog
    /// fails the run ([`SimError::MemoryBudgetExceeded`]) instead of
    /// falling back to a blocking write.
    pub fallback_on_memory_pressure: bool,
    /// Full-vs-incremental maintenance policy, consulted for nodes whose
    /// [`crate::SimNode::delta_bytes`] annotation is set (mirrors
    /// `RefreshConfig::refresh_mode` in the engine).
    pub refresh_mode: RefreshMode,
    /// Disk-read bandwidth consumed by concurrent snapshot readers
    /// (bytes/s) — the serving tier's epoch-pinned scans share the read
    /// channel with the refresh run, so maintenance reads see the
    /// residual bandwidth (floored at 10% of the channel; readers are
    /// throttled before maintenance stalls). The engine's snapshot reads
    /// are lock-free, so contention is purely a bandwidth effect — and
    /// deliberately invisible to [`SimConfig::cost_model`], which prices
    /// the quiet-system plan the optimizer sees.
    #[serde(default)]
    pub reader_read_bps: f64,
}

impl SimConfig {
    /// The paper's single-node environment with Memory Catalog `budget`.
    pub fn paper(budget: u64) -> Self {
        SimConfig {
            disk_read_bps: 519.8e6,
            disk_write_bps: 358.9e6,
            mem_bps: 8.0 * (1u64 << 30) as f64,
            disk_latency_s: 175e-6,
            memory_budget: budget,
            compute_scale: 1.0,
            io_scale: 1.0,
            per_node_overhead_s: 0.15,
            compute_penalty: 0.0,
            lanes: 1,
            run_ahead_window: None,
            fallback_on_memory_pressure: true,
            refresh_mode: RefreshMode::Auto,
            reader_read_bps: 0.0,
        }
    }

    /// Adds a concurrent snapshot-reader load of `bps` bytes/s on the
    /// disk-read channel (see [`SimConfig::reader_read_bps`]).
    pub fn with_reader_load(mut self, bps: f64) -> Self {
        self.reader_read_bps = bps.max(0.0);
        self
    }

    /// The same environment with `lanes` compute lanes.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Overrides the multi-lane run-ahead window.
    pub fn with_run_ahead_window(mut self, window: usize) -> Self {
        self.run_ahead_window = Some(window);
        self
    }

    /// Overrides the memory-pressure fallback policy.
    pub fn with_fallback_on_memory_pressure(mut self, fallback: bool) -> Self {
        self.fallback_on_memory_pressure = fallback;
        self
    }

    /// Overrides the maintenance policy.
    pub fn with_refresh_mode(mut self, mode: RefreshMode) -> Self {
        self.refresh_mode = mode;
        self
    }

    /// The cost model the optimizer should use under this configuration.
    pub fn cost_model(&self) -> CostModel {
        CostModel {
            disk_read_bps: self.disk_read_bps * self.io_scale,
            disk_write_bps: self.disk_write_bps * self.io_scale,
            mem_bps: self.mem_bps,
            disk_latency_s: self.disk_latency_s,
        }
    }

    fn disk_read_time(&self, bytes: u64) -> f64 {
        let channel = self.disk_read_bps * self.io_scale;
        let effective = (channel - self.reader_read_bps).max(channel * 0.1);
        self.disk_latency_s + bytes as f64 / effective
    }

    fn disk_write_time(&self, bytes: u64) -> f64 {
        self.disk_latency_s + bytes as f64 / (self.disk_write_bps * self.io_scale)
    }

    fn mem_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.mem_bps
    }

    fn compute_time(&self, seconds: f64) -> f64 {
        seconds * (1.0 + self.compute_penalty) / self.compute_scale
    }
}

/// Per-run incremental-maintenance plan, fixed before simulation (mirror
/// of the engine controller's delta planning).
struct SimDeltaPlan {
    /// How each node is brought up to date.
    modes: Vec<NodeMode>,
    /// Memory Catalog payload per node if admitted: its delta size when
    /// every consumer maintains incrementally, its output size otherwise.
    payload: Vec<u64>,
    /// Whether the node's catalog payload is its delta.
    delta_payload: Vec<bool>,
    /// Nodes whose delta is spilled to storage for consumers that cannot
    /// read it from the catalog.
    spill: Vec<bool>,
    /// Nodes persisted by appending a delta-sized segment instead of
    /// rewriting the MV (mirror of the engine's append path): the
    /// incremental run then skips the own-contents re-read and its write
    /// event is delta-sized.
    append: Vec<bool>,
    /// Bytes each node's persistence writes: `delta_bytes` on the append
    /// path, `output_bytes` otherwise.
    write_bytes: Vec<u64>,
    /// Effective flags: the plan's flags minus skipped nodes.
    flagged: FlagSet,
}

/// Deterministic single-lane refresh-run simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Simulates the sequential, nothing-flagged baseline ("No
    /// optimization" in Figure 9) using a deterministic topological order.
    pub fn run_unoptimized(&self, workload: &SimWorkload) -> Result<SimReport> {
        let order = workload.graph.kahn_order();
        self.run(workload, &Plan::unoptimized(order))
    }

    /// Simulates a refresh run under `plan`, reproducing the engine
    /// controller's semantics (background materialization, release on
    /// last-consumer + write-done, fallback under memory pressure,
    /// full-vs-incremental maintenance per node). With `config.lanes > 1`
    /// the run mirrors the engine's multi-lane executor instead of the
    /// paper's sequential one.
    pub fn run(&self, workload: &SimWorkload, plan: &Plan) -> Result<SimReport> {
        workload.graph.validate_order(&plan.order)?;
        let pos = workload.graph.order_positions(&plan.order)?;
        let dp = self.plan_deltas(workload, plan);
        if self.config.lanes <= 1 {
            self.run_single_lane(workload, plan, &pos, &dp)
        } else {
            self.run_multi_lane(workload, plan, &pos, &dp)
        }
    }

    /// Fixes every node's maintenance mode before the run — the same
    /// decision rule as the engine's controller: a node can be maintained
    /// incrementally only when every parent's delta is known (the parent
    /// is skipped, or incremental and publishing — build-side parents of a
    /// delta-join spine must be *skipped*, since a changed build side
    /// forces a recompute), is skipped when its annotated delta is zero,
    /// and otherwise needs operator support plus — under
    /// [`RefreshMode::Auto`] — a cost-model win.
    fn plan_deltas(&self, workload: &SimWorkload, plan: &Plan) -> SimDeltaPlan {
        let graph = &workload.graph;
        let n = graph.len();
        let cfg = &self.config;
        let mut modes = vec![NodeMode::Full; n];
        if cfg.refresh_mode != RefreshMode::AlwaysFull {
            for &v in &plan.order {
                let node = graph.node(v);
                let Some(delta) = node.delta_bytes else {
                    continue;
                };
                // Every parent's delta must be known: skipped, or
                // incremental *and publishing* (merge-only parents absorb
                // their delta but expose nothing to consume). A parent on
                // the build side of a join spine must be skipped outright.
                let known = graph.parents(v).iter().all(|&p| {
                    let parent = graph.node(p);
                    if node.build_inputs.contains(&parent.name) {
                        modes[p.index()] == NodeMode::Skipped
                    } else {
                        modes[p.index()] == NodeMode::Skipped
                            || (modes[p.index()] == NodeMode::Incremental && parent.delta_publishes)
                    }
                });
                if !known {
                    continue;
                }
                if delta == 0 {
                    modes[v.index()] = NodeMode::Skipped;
                    continue;
                }
                if !node.delta_supported {
                    continue;
                }
                let incremental = match cfg.refresh_mode {
                    RefreshMode::AlwaysIncremental => true,
                    RefreshMode::Auto => {
                        // Mirror of the engine's input pricing: an
                        // incremental publishing parent has grown by its
                        // applied delta by the time this node runs, so
                        // the full path re-reads the post-update size.
                        let input: u64 = node.base_read_bytes
                            + graph
                                .parents(v)
                                .iter()
                                .map(|&p| {
                                    let parent = graph.node(p);
                                    let grown = if modes[p.index()] == NodeMode::Incremental
                                        && parent.delta_publishes
                                    {
                                        parent.delta_bytes.unwrap_or(0)
                                    } else {
                                        0
                                    };
                                    parent.output_bytes + grown
                                })
                                .sum::<u64>();
                        cfg.cost_model().incremental_refresh_wins_observed(
                            input,
                            node.output_bytes,
                            delta,
                            node.build_read_bytes,
                            // The sim's delta annotation IS the node's
                            // output delta, the size an append persists.
                            node.delta_appendable.then_some(delta),
                            node.observed_cost.as_ref(),
                        )
                    }
                    RefreshMode::AlwaysFull => unreachable!("checked above"),
                };
                if incremental {
                    modes[v.index()] = NodeMode::Incremental;
                }
            }
        }
        let flagged: FlagSet = (0..n)
            .map(|i| plan.flagged.contains(sc_dag::NodeId(i)) && modes[i] != NodeMode::Skipped)
            .collect();
        let mut delta_payload = vec![false; n];
        let mut spill = vec![false; n];
        let mut payload = vec![0u64; n];
        for v in graph.node_ids() {
            let i = v.index();
            let children = graph.children(v);
            let inc = children
                .iter()
                .filter(|&&c| modes[c.index()] == NodeMode::Incremental)
                .count();
            let publishes = modes[i] == NodeMode::Incremental && graph.node(v).delta_publishes;
            delta_payload[i] =
                flagged.contains(v) && publishes && !children.is_empty() && inc == children.len();
            spill[i] = publishes && inc > 0 && !delta_payload[i];
            payload[i] = if delta_payload[i] {
                graph.node(v).delta_bytes.unwrap_or(0)
            } else {
                graph.node(v).output_bytes
            };
        }
        let mut append = vec![false; n];
        let mut write_bytes = vec![0u64; n];
        for v in graph.node_ids() {
            let i = v.index();
            let node = graph.node(v);
            // Mirror of the engine's append rule: insert-only row-wise
            // shapes whose full output is never needed in the catalog.
            append[i] = modes[i] == NodeMode::Incremental
                && node.delta_publishes
                && node.delta_appendable
                && !(flagged.contains(v) && !graph.children(v).is_empty() && !delta_payload[i]);
            write_bytes[i] = if append[i] {
                node.delta_bytes.unwrap_or(0)
            } else {
                node.output_bytes
            };
        }
        SimDeltaPlan {
            modes,
            payload,
            delta_payload,
            spill,
            append,
            write_bytes,
            flagged,
        }
    }

    /// The paper's sequential controller: one compute lane walking
    /// `plan.order`, one shared storage write channel.
    fn run_single_lane(
        &self,
        workload: &SimWorkload,
        plan: &Plan,
        pos: &[usize],
        dp: &SimDeltaPlan,
    ) -> Result<SimReport> {
        let graph = &workload.graph;
        let n = graph.len();
        let cfg = &self.config;

        let mut resident = vec![false; n]; // currently in Memory Catalog
        let mut write_done = vec![f64::INFINITY; n];
        let mut mem_used: u64 = 0;
        let mut peak_mem: u64 = 0;
        let mut writer_free_at = 0.0f64;
        let mut now = 0.0f64;
        let mut timelines = Vec::with_capacity(n);

        // Release every resident node whose consumers have all executed
        // (position < p). Per §III-C the entry is freed as soon as its
        // dependents complete; the in-flight background write holds its own
        // reference, so the catalog budget is released immediately.
        let release_pass = |resident: &mut Vec<bool>,
                            mem_used: &mut u64,
                            _write_done: &[f64],
                            p: usize,
                            _time: f64| {
            for u in graph.node_ids() {
                if resident[u.index()] && graph.children(u).iter().all(|c| pos[c.index()] < p) {
                    resident[u.index()] = false;
                    *mem_used -= dp.payload[u.index()];
                }
            }
        };

        for (p, &v) in plan.order.iter().enumerate() {
            let node = graph.node(v);
            let i = v.index();

            if dp.modes[i] == NodeMode::Skipped {
                // Stored contents already current: no statement is even
                // issued. The node still counts as an executed consumer
                // (later release passes see its position as done).
                timelines.push(NodeTimeline {
                    name: node.name.clone(),
                    mode: NodeMode::Skipped,
                    start_s: now,
                    read_s: 0.0,
                    disk_read_s: 0.0,
                    compute_s: 0.0,
                    write_s: 0.0,
                    available_s: now,
                    persisted_s: now,
                    flagged: false,
                    fell_back: false,
                });
                continue;
            }

            now += cfg.per_node_overhead_s;
            let start = now;
            release_pass(&mut resident, &mut mem_used, &write_done, p, now);

            let incremental = dp.modes[i] == NodeMode::Incremental;
            let delta_bytes = node.delta_bytes.unwrap_or(0);
            let mut read_s = 0.0;
            let mut disk_read_s = 0.0;
            let compute_s = if incremental {
                // Re-read own stored contents to apply the delta — unless
                // the append path skips straight to a delta-sized segment.
                if !dp.append[i] {
                    let t = cfg.disk_read_time(node.output_bytes);
                    read_s += t;
                    disk_read_s += t;
                }
                // Static build sides of a join spine: the propagated delta
                // probes them, so the incremental path reads them in full.
                if node.build_read_bytes > 0 {
                    let t = cfg.disk_read_time(node.build_read_bytes);
                    read_s += t;
                    disk_read_s += t;
                }
                // Parent deltas: from the catalog when resident as a delta
                // payload, from their spilled file otherwise. (The pending
                // base-table delta itself is an in-memory log: free.)
                for &parent in graph.parents(v) {
                    let pi = parent.index();
                    match dp.modes[pi] {
                        NodeMode::Skipped => {}
                        _ => {
                            let bytes = graph.node(parent).delta_bytes.unwrap_or(0);
                            if resident[pi] && dp.delta_payload[pi] {
                                read_s += cfg.mem_time(bytes);
                            } else {
                                let t = cfg.disk_read_time(bytes);
                                read_s += t;
                                disk_read_s += t;
                            }
                        }
                    }
                }
                // Operator work scales with the delta fraction.
                let frac = (delta_bytes as f64 / (node.output_bytes.max(1)) as f64).min(1.0);
                cfg.compute_time(node.compute_s) * frac
            } else {
                // Full recompute: base tables always from storage; parent
                // outputs from memory when resident.
                if node.base_read_bytes > 0 {
                    let t = cfg.disk_read_time(node.base_read_bytes);
                    read_s += t;
                    disk_read_s += t;
                }
                for &parent in graph.parents(v) {
                    let bytes = graph.node(parent).output_bytes;
                    if resident[parent.index()] {
                        read_s += cfg.mem_time(bytes);
                    } else {
                        let t = cfg.disk_read_time(bytes);
                        read_s += t;
                        disk_read_s += t;
                    }
                }
                cfg.compute_time(node.compute_s)
            };

            let mut available = start + read_s + compute_s;
            let mut write_s = 0.0;

            // Spill the published delta for consumers that read it from
            // storage: a blocking, delta-sized write on the shared channel.
            if dp.spill[i] {
                let wstart = available.max(writer_free_at);
                let done = wstart + cfg.disk_write_time(delta_bytes);
                writer_free_at = done;
                write_s += done - available;
                available = done;
            }

            let flagged = dp.flagged.contains(v);
            let mut fell_back = false;
            let persisted;

            // A childless flagged node has no consumers: it is created in
            // memory only to background its write and never occupies the
            // catalog (it is outside every Vi in the optimizer's model).
            let occupies = graph.out_degree(v) > 0;
            if flagged {
                release_pass(&mut resident, &mut mem_used, &write_done, p, available);
                if !occupies {
                    available += cfg.mem_time(dp.write_bytes[i]);
                    let wstart = available.max(writer_free_at);
                    let done = wstart + cfg.disk_write_time(dp.write_bytes[i]);
                    write_done[i] = done;
                    writer_free_at = done;
                    persisted = done;
                    now = available;
                } else if mem_used + dp.payload[i] <= cfg.memory_budget {
                    // Creating the payload in memory costs one memory
                    // write (delta-sized for delta payloads).
                    available += cfg.mem_time(dp.payload[i]);
                    resident[i] = true;
                    mem_used += dp.payload[i];
                    peak_mem = peak_mem.max(mem_used);
                    let wstart = available.max(writer_free_at);
                    let done = wstart + cfg.disk_write_time(dp.write_bytes[i]);
                    write_done[i] = done;
                    writer_free_at = done;
                    persisted = done;
                    now = available;
                } else if cfg.fallback_on_memory_pressure {
                    // Memory pressure: blocking write instead. A fallen-
                    // back delta payload must reach storage too.
                    fell_back = true;
                    let spill_s = if dp.delta_payload[i] {
                        cfg.disk_write_time(delta_bytes)
                    } else {
                        0.0
                    };
                    let wstart = available.max(writer_free_at);
                    let done = wstart + spill_s + cfg.disk_write_time(dp.write_bytes[i]);
                    writer_free_at = done;
                    write_done[i] = done;
                    write_s += done - available;
                    persisted = done;
                    now = done;
                } else {
                    return Err(SimError::MemoryBudgetExceeded {
                        requested: dp.payload[i],
                        used: mem_used,
                        budget: cfg.memory_budget,
                    });
                }
            } else {
                let wstart = available.max(writer_free_at);
                let done = wstart + cfg.disk_write_time(dp.write_bytes[i]);
                writer_free_at = done;
                write_done[i] = done;
                write_s += done - available;
                persisted = done;
                now = done;
            }

            timelines.push(NodeTimeline {
                name: node.name.clone(),
                mode: dp.modes[i],
                start_s: start,
                read_s,
                disk_read_s,
                compute_s,
                write_s,
                available_s: available,
                persisted_s: persisted,
                flagged: flagged && !fell_back,
                fell_back,
            });
        }

        let total_s = now.max(writer_free_at);
        Ok(SimReport {
            total_s,
            nodes: timelines,
            peak_memory_bytes: peak_mem,
        })
    }

    /// Discrete-event mirror of the engine's multi-lane executor: up to
    /// `lanes` nodes run concurrently, each starting once every dependency
    /// is readable, a lane is free, and the node is within the bounded
    /// run-ahead window of the computed plan-order prefix (ready work is
    /// dispatched in plan order). Flag admission replays the single-lane
    /// Memory Catalog accounting deterministically: a flagged node's
    /// admit-or-fallback outcome is precomputed in plan order, and the
    /// admission itself waits until every node earlier in the plan has
    /// computed. Background materializations share one FIFO write channel;
    /// blocking writes — including memory-pressure fallbacks — occupy a
    /// worker lane, as in the engine's pool.
    fn run_multi_lane(
        &self,
        workload: &SimWorkload,
        plan: &Plan,
        pos: &[usize],
        dp: &SimDeltaPlan,
    ) -> Result<SimReport> {
        use std::cmp::Reverse;
        use std::collections::{BTreeMap, BinaryHeap};

        let graph = &workload.graph;
        let n = graph.len();
        let cfg = &self.config;
        let lanes = cfg.lanes.min(n.max(1));
        let window = cfg
            .run_ahead_window
            .unwrap_or_else(|| sc_core::run_ahead_window(lanes));

        /// Heap entries ordered by time then insertion sequence, so the
        /// simulation is fully deterministic.
        #[derive(Debug, Clone, Copy, PartialEq)]
        struct Key(f64, u64);
        impl Eq for Key {}
        impl PartialOrd for Key {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Key {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
            }
        }

        #[derive(Debug, Clone, Copy)]
        enum Event {
            /// A node finished read+compute.
            ComputeEnd(usize),
            /// A flagged node's in-memory creation finished; it may now be
            /// admitted (in plan order, once the prefix reaches it).
            AdmitReady(usize),
            /// A node's output became readable by consumers.
            Publish(usize),
            /// A write finished on a worker lane (fallback writes).
            LaneWriteEnd(usize),
            /// A compute lane became free.
            LaneFree,
        }

        /// Heap element: ordered by key alone (the sequence number makes
        /// keys unique, so this is a total order).
        #[derive(Debug, Clone, Copy)]
        struct Entry(Key, Event);
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.0 == other.0
            }
        }
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0)
            }
        }

        /// A unit of lane work waiting for dispatch.
        #[derive(Debug, Clone, Copy)]
        enum Job {
            Compute(usize),
            /// Blocking materialization of a fallback node's output.
            Write(usize),
        }

        let flagged = |i: usize| dp.flagged.contains(sc_dag::NodeId(i));
        let occupies = |i: usize| graph.out_degree(sc_dag::NodeId(i)) > 0;
        let delta_of = |i: usize| graph.node(sc_dag::NodeId(i)).delta_bytes.unwrap_or(0);
        // The executor works against the *effective* flags (skipped nodes
        // never enter the catalog).
        let eff_plan = Plan {
            order: plan.order.clone(),
            flagged: dp.flagged.clone(),
        };
        let plan = &eff_plan;
        let admission_order: Vec<usize> = plan
            .order
            .iter()
            .map(|v| v.index())
            .filter(|&i| flagged(i) && occupies(i))
            .collect();

        let mut pending_parents = vec![0usize; n];
        let mut remaining_children = vec![0usize; n];
        for (a, b) in graph.edges() {
            remaining_children[a.index()] += 1;
            pending_parents[b.index()] += 1;
        }

        // Deterministic replay of the single-lane accounting: fix every
        // flagged node's admit/fallback outcome in plan order upfront
        // (sizes are static in simulation). The replayer is the same type
        // the engine's executor uses, so the two cannot drift apart. The
        // accounted size is the node's catalog *payload* — delta-sized
        // when every consumer maintains incrementally.
        let admit_decision: Vec<bool> = {
            let parents_of: Vec<Vec<usize>> = (0..n)
                .map(|i| {
                    graph
                        .parents(sc_dag::NodeId(i))
                        .iter()
                        .map(|p| p.index())
                        .collect()
                })
                .collect();
            let mut replay = sc_core::AdmissionReplay::new(plan, &parents_of, cfg.memory_budget);
            replay.advance(plan, &parents_of, &vec![true; n], &dp.payload);
            (0..n)
                .map(|i| replay.decision(i).unwrap_or(false))
                .collect()
        };
        if !cfg.fallback_on_memory_pressure {
            // Strict-failure mode: the first modeled fallback aborts the
            // run, as in the engine.
            for &cand in &admission_order {
                if !admit_decision[cand] {
                    return Err(SimError::MemoryBudgetExceeded {
                        requested: dp.payload[cand],
                        used: 0,
                        budget: cfg.memory_budget,
                    });
                }
            }
        }

        let mut events: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |events: &mut BinaryHeap<Reverse<Entry>>, t: f64, e: Event| {
            events.push(Reverse(Entry(Key(t, seq), e)));
            seq += 1;
        };

        // Ready jobs keyed by plan position so dispatch order is the plan's.
        let mut ready: BTreeMap<usize, Job> = BTreeMap::new();
        let mut lanes_available = lanes;
        let mut computed = vec![false; n];
        let mut prefix = 0usize; // first plan position not yet computed
        let mut created_done = vec![false; n];
        let mut next_admit = 0usize;
        let mut resident = vec![false; n];
        let mut mem_used = 0u64;
        let mut peak_mem = 0u64;
        let mut bg_free_at = 0.0f64; // shared storage write channel
        let mut read_free_at = 0.0f64; // shared storage read channel
        let mut fell_back = vec![false; n];
        let mut start_s = vec![0.0f64; n];
        let mut read_s = vec![0.0f64; n];
        let mut disk_read_s = vec![0.0f64; n];
        let mut compute_s = vec![0.0f64; n];
        let mut write_s = vec![0.0f64; n];
        let mut available_s = vec![0.0f64; n];
        let mut persisted_s = vec![f64::INFINITY; n];
        let mut end_time = 0.0f64;

        for &v in &plan.order {
            if pending_parents[v.index()] == 0 {
                ready.insert(pos[v.index()], Job::Compute(v.index()));
            }
        }

        macro_rules! dispatch {
            ($clock:expr) => {
                while lanes_available > 0 {
                    // First job in plan order that is eligible: writes
                    // always, computes only inside the run-ahead window.
                    let slot = ready
                        .iter()
                        .find(|(p, job)| match job {
                            Job::Write(_) => true,
                            Job::Compute(_) => **p <= prefix + window,
                        })
                        .map(|(&p, &job)| (p, job));
                    let Some((p, job)) = slot else { break };
                    ready.remove(&p);
                    lanes_available -= 1;
                    match job {
                        Job::Compute(i) => {
                            let v = sc_dag::NodeId(i);
                            let node = graph.node(v);
                            start_s[i] = $clock;
                            if dp.modes[i] == NodeMode::Skipped {
                                // No statement issued: complete instantly.
                                push(&mut events, $clock, Event::ComputeEnd(i));
                            } else {
                                let incremental = dp.modes[i] == NodeMode::Incremental;
                                let mut r = 0.0;
                                let mut dr = 0.0;
                                if incremental {
                                    // Own stored contents, to apply the
                                    // delta to (skipped on the append
                                    // path).
                                    if !dp.append[i] {
                                        let t = cfg.disk_read_time(node.output_bytes);
                                        r += t;
                                        dr += t;
                                    }
                                    // Static build sides the delta probes.
                                    if node.build_read_bytes > 0 {
                                        let t = cfg.disk_read_time(node.build_read_bytes);
                                        r += t;
                                        dr += t;
                                    }
                                    for &parent in graph.parents(v) {
                                        let pi = parent.index();
                                        if dp.modes[pi] == NodeMode::Skipped {
                                            continue;
                                        }
                                        let bytes = delta_of(pi);
                                        if resident[pi] && dp.delta_payload[pi] {
                                            r += cfg.mem_time(bytes);
                                        } else {
                                            let t = cfg.disk_read_time(bytes);
                                            r += t;
                                            dr += t;
                                        }
                                    }
                                    let frac = (delta_of(i) as f64
                                        / (node.output_bytes.max(1)) as f64)
                                        .min(1.0);
                                    compute_s[i] = cfg.compute_time(node.compute_s) * frac;
                                } else {
                                    if node.base_read_bytes > 0 {
                                        let t = cfg.disk_read_time(node.base_read_bytes);
                                        r += t;
                                        dr += t;
                                    }
                                    for &parent in graph.parents(v) {
                                        let bytes = graph.node(parent).output_bytes;
                                        if resident[parent.index()] {
                                            r += cfg.mem_time(bytes);
                                        } else {
                                            let t = cfg.disk_read_time(bytes);
                                            r += t;
                                            dr += t;
                                        }
                                    }
                                    compute_s[i] = cfg.compute_time(node.compute_s);
                                }
                                read_s[i] = r;
                                disk_read_s[i] = dr;
                                // Disk reads reserve a slot on the shared
                                // read channel (one device, as in the
                                // engine's throttle); memory reads and
                                // compute don't.
                                let t0 = $clock + cfg.per_node_overhead_s;
                                let read_end = if dr > 0.0 {
                                    let rs = t0.max(read_free_at);
                                    read_free_at = rs + dr;
                                    rs + dr
                                } else {
                                    t0
                                };
                                let mut done = read_end + (r - dr) + compute_s[i];
                                if dp.spill[i] {
                                    // Published delta spilled to storage
                                    // during compute (before the node
                                    // becomes readable), on the shared
                                    // write channel.
                                    let wstart = done.max(bg_free_at);
                                    let spill_done = wstart + cfg.disk_write_time(delta_of(i));
                                    bg_free_at = spill_done;
                                    write_s[i] += spill_done - done;
                                    done = spill_done;
                                }
                                push(&mut events, done, Event::ComputeEnd(i));
                            }
                        }
                        Job::Write(i) => {
                            // Fallback write: occupies this lane AND the
                            // shared write channel, like the engine's
                            // Write task hitting the throttled disk. A
                            // fallen-back delta payload spills its delta
                            // first.
                            let spill = if dp.delta_payload[i] {
                                cfg.disk_write_time(delta_of(i))
                            } else {
                                0.0
                            };
                            let wstart = ($clock).max(bg_free_at);
                            let done = wstart + spill + cfg.disk_write_time(dp.write_bytes[i]);
                            bg_free_at = done;
                            write_s[i] += done - $clock;
                            persisted_s[i] = done;
                            push(&mut events, done, Event::LaneWriteEnd(i));
                        }
                    }
                }
            };
        }

        macro_rules! process_admissions {
            ($clock:expr) => {
                while next_admit < admission_order.len() {
                    let cand = admission_order[next_admit];
                    // Mirror the engine: admit only when the node's output
                    // exists in memory and every node earlier in the plan
                    // has computed (so the precomputed decision is final).
                    if !created_done[cand] || prefix <= pos[cand] {
                        break;
                    }
                    if admit_decision[cand] {
                        resident[cand] = true;
                        mem_used += dp.payload[cand];
                        peak_mem = peak_mem.max(mem_used);
                        let wstart = ($clock).max(bg_free_at);
                        let done = wstart + cfg.disk_write_time(dp.write_bytes[cand]);
                        bg_free_at = done;
                        persisted_s[cand] = done;
                        push(&mut events, $clock, Event::Publish(cand));
                    } else {
                        // Memory pressure: blocking write on a worker lane,
                        // exactly like the engine's fallback Write task.
                        fell_back[cand] = true;
                        ready.insert(pos[cand], Job::Write(cand));
                    }
                    next_admit += 1;
                }
            };
        }

        dispatch!(0.0f64);

        while let Some(Reverse(Entry(Key(clock, _), event))) = events.pop() {
            end_time = end_time.max(clock);
            match event {
                Event::ComputeEnd(i) => {
                    let v = sc_dag::NodeId(i);
                    computed[i] = true;
                    while prefix < n && computed[plan.order[prefix].index()] {
                        prefix += 1;
                    }
                    // This node consumed its parents: release entries whose
                    // consumers have now all executed.
                    for &parent in graph.parents(v) {
                        let p = parent.index();
                        remaining_children[p] -= 1;
                        if remaining_children[p] == 0 && resident[p] {
                            resident[p] = false;
                            mem_used -= dp.payload[p];
                        }
                    }
                    if dp.modes[i] == NodeMode::Skipped {
                        // Already persisted from the previous run: free
                        // the lane and let consumers proceed.
                        available_s[i] = clock;
                        persisted_s[i] = clock;
                        push(&mut events, clock, Event::LaneFree);
                        push(&mut events, clock, Event::Publish(i));
                    } else if flagged(i) && !occupies(i) {
                        // Childless flagged node: created in memory only to
                        // background its write; never occupies the catalog.
                        let created = clock + cfg.mem_time(dp.write_bytes[i]);
                        available_s[i] = created;
                        let wstart = created.max(bg_free_at);
                        let done = wstart + cfg.disk_write_time(dp.write_bytes[i]);
                        bg_free_at = done;
                        persisted_s[i] = done;
                        push(&mut events, created, Event::LaneFree);
                        push(&mut events, created, Event::Publish(i));
                    } else if flagged(i) {
                        // Create the catalog payload in memory on this
                        // lane (delta-sized for delta payloads), then wait
                        // for plan-order admission.
                        let created = clock + cfg.mem_time(dp.payload[i]);
                        available_s[i] = created;
                        push(&mut events, created, Event::LaneFree);
                        push(&mut events, created, Event::AdmitReady(i));
                    } else {
                        // Blocking write on this lane, through the shared
                        // write channel (one storage device).
                        available_s[i] = clock;
                        let wstart = clock.max(bg_free_at);
                        let done = wstart + cfg.disk_write_time(dp.write_bytes[i]);
                        bg_free_at = done;
                        write_s[i] += done - clock;
                        persisted_s[i] = done;
                        push(&mut events, done, Event::LaneFree);
                        push(&mut events, done, Event::Publish(i));
                    }
                    process_admissions!(clock);
                    dispatch!(clock);
                }
                Event::AdmitReady(i) => {
                    created_done[i] = true;
                    process_admissions!(clock);
                    dispatch!(clock);
                }
                Event::LaneWriteEnd(i) => {
                    lanes_available += 1;
                    push(&mut events, clock, Event::Publish(i));
                    dispatch!(clock);
                }
                Event::Publish(i) => {
                    for &child in graph.children(sc_dag::NodeId(i)) {
                        let c = child.index();
                        pending_parents[c] -= 1;
                        if pending_parents[c] == 0 {
                            ready.insert(pos[c], Job::Compute(c));
                        }
                    }
                    dispatch!(clock);
                }
                Event::LaneFree => {
                    lanes_available += 1;
                    dispatch!(clock);
                }
            }
        }

        let total_s = end_time.max(bg_free_at);
        let timelines = plan
            .order
            .iter()
            .map(|&v| {
                let i = v.index();
                NodeTimeline {
                    name: graph.node(v).name.clone(),
                    mode: dp.modes[i],
                    start_s: start_s[i],
                    read_s: read_s[i],
                    disk_read_s: disk_read_s[i],
                    compute_s: compute_s[i],
                    write_s: write_s[i],
                    available_s: available_s[i],
                    persisted_s: persisted_s[i],
                    flagged: flagged(i) && !fell_back[i],
                    fell_back: fell_back[i],
                }
            })
            .collect();
        Ok(SimReport {
            total_s,
            nodes: timelines,
            peak_memory_bytes: peak_mem,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SimNode;
    use sc_core::FlagSet;
    use sc_dag::NodeId;

    const GIB: u64 = 1 << 30;

    /// Figure 4 workload: mv1 (8 GiB from 16 GiB of base data) feeds mv2
    /// and mv3.
    fn fig4() -> SimWorkload {
        SimWorkload::from_parts(
            [
                SimNode::new("mv1", 5.0, 8 * GIB, 16 * GIB),
                SimNode::new("mv2", 3.0, GIB, 0),
                SimNode::new("mv3", 3.0, GIB, 0),
            ],
            [(0, 1), (0, 2)],
        )
        .unwrap()
    }

    fn plan(order: &[usize], flagged: &[usize], n: usize) -> Plan {
        Plan {
            order: order.iter().map(|&i| NodeId(i)).collect(),
            flagged: FlagSet::from_nodes(n, flagged.iter().map(|&i| NodeId(i))),
        }
    }

    #[test]
    fn baseline_time_decomposes() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(10 * GIB));
        let r = sim.run_unoptimized(&w).unwrap();
        let cfg = sim.config();
        let expected: f64 = 3.0 * cfg.per_node_overhead_s
            + cfg.disk_read_time(16 * GIB)
            + cfg.compute_time(5.0)
            + cfg.disk_write_time(8 * GIB)
            + 2.0
                * (cfg.disk_read_time(8 * GIB) + cfg.compute_time(3.0) + cfg.disk_write_time(GIB));
        assert!(
            (r.total_s - expected).abs() < 1e-6,
            "got {}, want {}",
            r.total_s,
            expected
        );
        assert_eq!(r.peak_memory_bytes, 0);
        assert_eq!(r.fallbacks(), 0);
    }

    #[test]
    fn reader_load_slows_refresh_reads_but_not_decisions() {
        let w = fig4();
        let quiet_cfg = SimConfig::paper(10 * GIB);
        // Readers eat half the read channel.
        let busy_cfg = quiet_cfg
            .clone()
            .with_reader_load(quiet_cfg.disk_read_bps / 2.0);
        let quiet = Simulator::new(quiet_cfg.clone());
        let busy = Simulator::new(busy_cfg.clone());
        let p = plan(&[0, 1, 2], &[0], 3);
        let q = quiet.run(&w, &p).unwrap();
        let b = busy.run(&w, &p).unwrap();
        assert!(
            b.total_s > q.total_s,
            "reader load must slow maintenance reads: {} vs {}",
            b.total_s,
            q.total_s
        );
        // Disk reads roughly double; writes and compute are untouched.
        assert!(b.nodes[0].disk_read_s > q.nodes[0].disk_read_s * 1.9);
        assert_eq!(b.nodes[0].write_s, q.nodes[0].write_s);
        // The cost model stays the quiet-system one: reader load is a
        // runtime effect the optimizer does not price.
        assert_eq!(busy_cfg.cost_model(), quiet_cfg.cost_model());
        // Even absurd reader load is floored at 10% of the channel.
        let floored = SimConfig::paper(10 * GIB).with_reader_load(f64::MAX);
        assert!(floored.disk_read_time(GIB).is_finite());
    }

    #[test]
    fn flagging_hides_write_and_reads() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(10 * GIB));
        let base = sim.run_unoptimized(&w).unwrap();
        let sc = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        assert!(sc.total_s < base.total_s);
        // mv1's write is backgrounded.
        assert_eq!(sc.nodes[0].write_s, 0.0);
        assert!(sc.nodes[0].flagged);
        // Consumers read from memory: their disk read time is 0.
        assert_eq!(sc.nodes[1].disk_read_s, 0.0);
        assert_eq!(sc.nodes[2].disk_read_s, 0.0);
        // Peak memory equals mv1's size.
        assert_eq!(sc.peak_memory_bytes, 8 * GIB);
        // Everything still persisted by the end.
        assert!(sc.nodes.iter().all(|n| n.persisted_s <= sc.total_s + 1e-9));
    }

    #[test]
    fn speedup_magnitude_matches_hand_computation() {
        // Long downstream computes so the background write never blocks a
        // later blocking write (no channel contention to reason about).
        let w = SimWorkload::from_parts(
            [
                SimNode::new("mv1", 5.0, 8 * GIB, 16 * GIB),
                SimNode::new("mv2", 30.0, GIB, 0),
                SimNode::new("mv3", 30.0, GIB, 0),
            ],
            [(0, 1), (0, 2)],
        )
        .unwrap();
        let cfg = SimConfig::paper(10 * GIB);
        let sim = Simulator::new(cfg.clone());
        let base = sim.run_unoptimized(&w).unwrap();
        let sc = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        // Savings = write(8 GiB) hidden + 2 disk reads of 8 GiB replaced by
        // memory reads, minus the cost of creating mv1 in memory.
        let saving = cfg.disk_write_time(8 * GIB)
            + 2.0 * (cfg.disk_read_time(8 * GIB) - cfg.mem_time(8 * GIB))
            - cfg.mem_time(8 * GIB);
        assert!(
            ((base.total_s - sc.total_s) - saving).abs() < 1e-6,
            "measured saving {} vs expected {}",
            base.total_s - sc.total_s,
            saving
        );
    }

    #[test]
    fn memory_pressure_falls_back() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(GIB)); // mv1 won't fit
        let sc = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        assert_eq!(sc.fallbacks(), 1);
        assert!(!sc.nodes[0].flagged);
        assert!(sc.nodes[0].write_s > 0.0);
        // Equivalent to baseline since nothing stayed in memory.
        let base = sim.run_unoptimized(&w).unwrap();
        assert!((sc.total_s - base.total_s).abs() < 1e-9);
    }

    #[test]
    fn release_frees_budget_for_later_flags() {
        // Chain a -> b -> c with budget for one intermediate at a time.
        let w = SimWorkload::from_parts(
            [
                SimNode::new("a", 1.0, 4 * GIB, 8 * GIB),
                SimNode::new("b", 1.0, 4 * GIB, 0),
                SimNode::new("c", 1.0, GIB, 0),
            ],
            [(0, 1), (1, 2)],
        )
        .unwrap();
        let sim = Simulator::new(SimConfig::paper(4 * GIB));
        let r = sim.run(&w, &plan(&[0, 1, 2], &[0, 1], 3)).unwrap();
        // Both fit sequentially: a is released once b (its only consumer)
        // has run and a's background write finished — before c needs room…
        // b's creation happens *while* a is still resident, so b must fall
        // back; a alone fits.
        assert!(r.nodes[0].flagged);
        assert!(r.nodes[1].fell_back);
        assert_eq!(r.peak_memory_bytes, 4 * GIB);
    }

    #[test]
    fn background_writes_queue_fifo() {
        // Two flagged nodes in a row: the second's background write waits
        // for the first's.
        let w = SimWorkload::from_parts(
            [
                SimNode::new("a", 1.0, 4 * GIB, GIB),
                SimNode::new("b", 1.0, 4 * GIB, GIB),
                SimNode::new("consumer", 0.1, 1024, 0),
            ],
            [(0, 2), (1, 2)],
        )
        .unwrap();
        let sim = Simulator::new(SimConfig::paper(16 * GIB));
        let r = sim.run(&w, &plan(&[0, 1, 2], &[0, 1], 3)).unwrap();
        let cfg = sim.config();
        let w1_done = r.nodes[0].persisted_s;
        let w2_done = r.nodes[1].persisted_s;
        assert!(w2_done >= w1_done + cfg.disk_write_time(4 * GIB) - 1e-9);
        // End-to-end is bounded by the write channel draining.
        assert!((r.total_s - w2_done.max(r.nodes[2].persisted_s)).abs() < 1e-9);
    }

    #[test]
    fn cluster_scaling_shrinks_runtime() {
        let w = fig4();
        let mut cfg = SimConfig::paper(10 * GIB);
        let t1 = Simulator::new(cfg.clone())
            .run_unoptimized(&w)
            .unwrap()
            .total_s;
        cfg.compute_scale = 4.0;
        cfg.io_scale = 4.0;
        let t4 = Simulator::new(cfg).run_unoptimized(&w).unwrap().total_s;
        assert!(t4 < t1 / 2.0, "4-way scaling must at least halve runtime");
        // …but not by the full 4× because per-node overhead is serial.
        assert!(t4 > t1 / 4.0);
    }

    #[test]
    fn query_memory_penalty_slows_compute_only() {
        let w = fig4();
        let mut cfg = SimConfig::paper(10 * GIB);
        let plain = Simulator::new(cfg.clone())
            .run(&w, &plan(&[0, 1, 2], &[0], 3))
            .unwrap();
        cfg.compute_penalty = 0.1;
        let taxed = Simulator::new(cfg)
            .run(&w, &plan(&[0, 1, 2], &[0], 3))
            .unwrap();
        assert!(taxed.total_s > plain.total_s);
        assert!((taxed.total_compute_s() - plain.total_compute_s() * 1.1).abs() < 1e-9);
        assert_eq!(taxed.total_disk_read_s(), plain.total_disk_read_s());
    }

    #[test]
    fn invalid_order_rejected() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(GIB));
        assert!(sim.run(&w, &plan(&[1, 0, 2], &[], 3)).is_err());
    }

    /// A pure chain admits no parallelism: every timeline and the total
    /// must be identical across lane counts.
    #[test]
    fn multi_lane_chain_matches_single_lane() {
        let w = SimWorkload::from_parts(
            [
                SimNode::new("a", 2.0, 4 * GIB, 8 * GIB),
                SimNode::new("b", 1.0, 2 * GIB, 0),
                SimNode::new("c", 1.0, GIB, 0),
            ],
            [(0, 1), (1, 2)],
        )
        .unwrap();
        for flags in [vec![], vec![0usize], vec![0, 1]] {
            let p = plan(&[0, 1, 2], &flags, 3);
            let one = Simulator::new(SimConfig::paper(16 * GIB))
                .run(&w, &p)
                .unwrap();
            let four = Simulator::new(SimConfig::paper(16 * GIB).with_lanes(4))
                .run(&w, &p)
                .unwrap();
            if flags.is_empty() {
                // Without flags both models serialize through the chain
                // identically.
                assert!(
                    (one.total_s - four.total_s).abs() < 1e-9,
                    "unflagged chain must not change with lanes ({} vs {})",
                    one.total_s,
                    four.total_s
                );
            } else {
                // With flags the multi-lane executor runs blocking writes
                // on their own lanes instead of the shared channel, so it
                // can only be at least as fast.
                assert!(four.total_s <= one.total_s + 1e-9, "flags {flags:?}");
            }
            // The multi-lane executor releases a consumed parent before
            // admitting its consumer, so its peak can only be lower.
            assert!(
                four.peak_memory_bytes <= one.peak_memory_bytes,
                "flags {flags:?}"
            );
        }
    }

    /// Independent heavy nodes: four lanes must cut the wall clock well
    /// below the sequential run.
    #[test]
    fn multi_lane_speeds_up_wide_workload() {
        let nodes: Vec<SimNode> = (0..8)
            .map(|i| SimNode::new(format!("mv{i}"), 10.0, GIB, 2 * GIB))
            .collect();
        let w = SimWorkload::from_parts(nodes, []).unwrap();
        let p = plan(&[0, 1, 2, 3, 4, 5, 6, 7], &[], 8);
        let one = Simulator::new(SimConfig::paper(GIB)).run(&w, &p).unwrap();
        let four = Simulator::new(SimConfig::paper(GIB).with_lanes(4))
            .run(&w, &p)
            .unwrap();
        assert!(
            four.total_s < one.total_s / 2.0,
            "4 lanes ({:.2}s) must at least halve 1 lane ({:.2}s)",
            four.total_s,
            one.total_s
        );
        // All outputs still persisted.
        assert!(four
            .nodes
            .iter()
            .all(|n| n.persisted_s <= four.total_s + 1e-9));
    }

    /// The multi-lane run is a deterministic simulation: identical inputs
    /// give identical reports.
    #[test]
    fn multi_lane_is_deterministic() {
        let w = fig4();
        let p = plan(&[0, 1, 2], &[0], 3);
        let sim = Simulator::new(SimConfig::paper(10 * GIB).with_lanes(3));
        assert_eq!(sim.run(&w, &p).unwrap(), sim.run(&w, &p).unwrap());
    }

    /// Memory pressure falls back in the multi-lane path too, and the
    /// budget is never exceeded.
    #[test]
    fn multi_lane_memory_pressure_falls_back() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(GIB).with_lanes(2)); // mv1 won't fit
        let r = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        assert_eq!(r.fallbacks(), 1);
        assert!(!r.nodes[0].flagged);
        assert!(r.peak_memory_bytes <= GIB);
    }

    /// Churn-annotated Figure 4: 5% delta on the hub propagating to one
    /// consumer, nothing reaching the other.
    fn churned_fig4() -> SimWorkload {
        SimWorkload::from_parts(
            [
                SimNode::new("mv1", 5.0, 8 * GIB, 16 * GIB).with_delta(GIB / 4),
                SimNode::new("mv2", 3.0, GIB, 0).with_delta(GIB / 32),
                SimNode::new("mv3", 3.0, GIB, 0).with_delta(0),
            ],
            [(0, 1), (0, 2)],
        )
        .unwrap()
    }

    #[test]
    fn incremental_run_beats_full_and_skips_untouched() {
        let w = churned_fig4();
        let p = plan(&[0, 1, 2], &[], 3);
        for lanes in [1usize, 3] {
            let cfg = SimConfig::paper(10 * GIB).with_lanes(lanes);
            let full = Simulator::new(cfg.clone().with_refresh_mode(RefreshMode::AlwaysFull))
                .run(&w, &p)
                .unwrap();
            let inc = Simulator::new(cfg.with_refresh_mode(RefreshMode::AlwaysIncremental))
                .run(&w, &p)
                .unwrap();
            assert!(
                inc.total_s < full.total_s / 2.0,
                "lanes={lanes}: incremental ({:.2}s) must crush full ({:.2}s)",
                inc.total_s,
                full.total_s
            );
            assert_eq!(inc.nodes[0].mode, NodeMode::Incremental);
            assert_eq!(inc.nodes[1].mode, NodeMode::Incremental);
            assert_eq!(inc.nodes[2].mode, NodeMode::Skipped, "lanes={lanes}");
            assert_eq!(inc.nodes[2].read_s, 0.0);
            assert!(full.nodes.iter().all(|n| n.mode == NodeMode::Full));
        }
    }

    #[test]
    fn auto_mode_uses_cost_model() {
        // mv1's contents are half its input: re-reading them + the delta
        // beats re-reading the input, so Auto goes incremental; a node
        // whose output equals its input stays full.
        let w = SimWorkload::from_parts(
            [
                SimNode::new("halved", 2.0, 4 * GIB, 8 * GIB).with_delta(GIB / 8),
                SimNode::new("copy", 2.0, 8 * GIB, 8 * GIB).with_delta(GIB / 8),
            ],
            [],
        )
        .unwrap();
        let r = Simulator::new(SimConfig::paper(GIB))
            .run(&w, &plan(&[0, 1], &[], 2))
            .unwrap();
        assert_eq!(r.nodes[0].mode, NodeMode::Incremental);
        assert_eq!(r.nodes[1].mode, NodeMode::Full);
    }

    #[test]
    fn unsupported_nodes_and_their_consumers_stay_full() {
        // A join-like node (full_only) breaks the delta chain for its
        // consumer even though both are annotated.
        let w = SimWorkload::from_parts(
            [
                SimNode::new("join", 2.0, GIB, 8 * GIB)
                    .with_delta(GIB / 16)
                    .full_only(),
                SimNode::new("agg", 1.0, GIB / 64, 0).with_delta(GIB / 128),
            ],
            [(0, 1)],
        )
        .unwrap();
        let r =
            Simulator::new(SimConfig::paper(GIB).with_refresh_mode(RefreshMode::AlwaysIncremental))
                .run(&w, &plan(&[0, 1], &[], 2))
                .unwrap();
        assert_eq!(r.nodes[0].mode, NodeMode::Full);
        assert_eq!(r.nodes[1].mode, NodeMode::Full);
    }

    #[test]
    fn merge_only_nodes_do_not_feed_consumers() {
        // An aggregate-merge-shaped node maintains incrementally but
        // publishes no delta: its annotated consumer must recompute, as in
        // the engine.
        let w = SimWorkload::from_parts(
            [
                SimNode::new("agg", 2.0, GIB / 64, 8 * GIB)
                    .with_delta(GIB / 256)
                    .merge_only(),
                SimNode::new("child", 1.0, GIB / 128, 0).with_delta(GIB / 512),
            ],
            [(0, 1)],
        )
        .unwrap();
        let r =
            Simulator::new(SimConfig::paper(GIB).with_refresh_mode(RefreshMode::AlwaysIncremental))
                .run(&w, &plan(&[0, 1], &[], 2))
                .unwrap();
        assert_eq!(r.nodes[0].mode, NodeMode::Incremental);
        assert_eq!(r.nodes[1].mode, NodeMode::Full);
    }

    /// A join-hub node maintains incrementally only while its build-side
    /// parent is skipped: a changed build side forces a recompute (mirror
    /// of the engine's static-table rule).
    #[test]
    fn delta_join_spine_requires_skipped_build_parents() {
        let make = |dim_delta: u64| {
            SimWorkload::from_parts(
                [
                    SimNode::new("dim", 1.0, GIB / 8, GIB / 4).with_delta(dim_delta),
                    SimNode::new("fact_hub", 5.0, 4 * GIB, 8 * GIB)
                        .with_delta(GIB / 8)
                        .with_build_side(["dim"], GIB / 8),
                ],
                [(0, 1)],
            )
            .unwrap()
        };
        let p = plan(&[0, 1], &[], 2);
        let cfg = SimConfig::paper(GIB).with_refresh_mode(RefreshMode::AlwaysIncremental);
        for lanes in [1usize, 2] {
            let sim = Simulator::new(cfg.clone().with_lanes(lanes));
            let quiet = sim.run(&make(0), &p).unwrap();
            assert_eq!(quiet.nodes[0].mode, NodeMode::Skipped, "lanes={lanes}");
            assert_eq!(quiet.nodes[1].mode, NodeMode::Incremental);
            let churned_dim = sim.run(&make(GIB / 64), &p).unwrap();
            assert_eq!(churned_dim.nodes[0].mode, NodeMode::Incremental);
            assert_eq!(
                churned_dim.nodes[1].mode,
                NodeMode::Full,
                "lanes={lanes}: a changed build side forces a recompute"
            );
            // The delta-joining hub pays its build-side read on top of its
            // own stored contents.
            let hub = &quiet.nodes[1];
            let expected = cfg.disk_read_time(4 * GIB) + cfg.disk_read_time(GIB / 8);
            assert!(
                (hub.disk_read_s - expected).abs() < 1e-9,
                "lanes={lanes}: got {}, want {expected}",
                hub.disk_read_s
            );
        }
    }

    /// Under `Auto` the build-side read is charged against the delta-join
    /// win: a small dimension keeps incremental worthwhile, a build side
    /// as large as the whole input erases it.
    #[test]
    fn auto_mode_charges_build_side_reads() {
        let hub = |build_bytes: u64| {
            SimWorkload::from_parts(
                [SimNode::new("hub", 5.0, GIB / 2, 8 * GIB)
                    .with_delta(GIB / 64)
                    .with_build_side(Vec::<String>::new(), build_bytes)],
                [],
            )
            .unwrap()
        };
        let p = plan(&[0], &[], 1);
        let sim = Simulator::new(SimConfig::paper(GIB));
        let small = sim.run(&hub(GIB / 8), &p).unwrap();
        assert_eq!(small.nodes[0].mode, NodeMode::Incremental);
        let huge = sim.run(&hub(8 * GIB), &p).unwrap();
        assert_eq!(huge.nodes[0].mode, NodeMode::Full);
    }

    #[test]
    fn delta_payload_reserves_delta_sized_memory() {
        let w = churned_fig4();
        // Flag the hub; its consumers both maintain incrementally… mv3 is
        // skipped, so not *all* children are incremental? mv2 incremental,
        // mv3 skipped -> mixed children keep the full payload. Give mv3
        // churn too so both consume the delta.
        let w2 = {
            let mut nodes: Vec<SimNode> = w.graph.payloads().to_vec();
            nodes[2] = SimNode::new("mv3", 3.0, GIB, 0).with_delta(GIB / 32);
            SimWorkload::from_parts(nodes, [(0, 1), (0, 2)]).unwrap()
        };
        let p = plan(&[0, 1, 2], &[0], 3);
        let cfg = SimConfig::paper(10 * GIB).with_refresh_mode(RefreshMode::AlwaysIncremental);
        let r = Simulator::new(cfg.clone()).run(&w2, &p).unwrap();
        assert!(r.nodes[0].flagged);
        assert_eq!(
            r.peak_memory_bytes,
            GIB / 4,
            "catalog holds the hub's delta, not its 8 GiB table"
        );
        // The full run must reserve the whole 8 GiB table instead.
        let full = Simulator::new(cfg.with_refresh_mode(RefreshMode::AlwaysFull))
            .run(&w2, &p)
            .unwrap();
        assert_eq!(full.peak_memory_bytes, 8 * GIB);
        // Consumers pay only a delta-sized memory read on top of their own
        // stored contents — far less than re-reading the 8 GiB hub.
        assert!(r.nodes[1].read_s < cfg_read_time_check());
    }

    /// Disk-read time of the 8 GiB hub under the paper config — the read
    /// an incremental consumer avoids.
    fn cfg_read_time_check() -> f64 {
        SimConfig::paper(GIB).disk_read_time(8 * GIB)
    }

    #[test]
    fn strict_failure_mode_errors_instead_of_falling_back() {
        let w = fig4();
        let p = plan(&[0, 1, 2], &[0], 3);
        for lanes in [1usize, 2] {
            let cfg = SimConfig::paper(GIB) // mv1 won't fit
                .with_lanes(lanes)
                .with_fallback_on_memory_pressure(false);
            match Simulator::new(cfg).run(&w, &p) {
                Err(crate::SimError::MemoryBudgetExceeded {
                    requested, budget, ..
                }) => {
                    assert_eq!(requested, 8 * GIB);
                    assert_eq!(budget, GIB);
                }
                other => panic!("lanes={lanes}: expected budget error, got {other:?}"),
            }
            // Default still falls back.
            let ok = Simulator::new(SimConfig::paper(GIB).with_lanes(lanes))
                .run(&w, &p)
                .unwrap();
            assert_eq!(ok.fallbacks(), 1);
        }
    }

    #[test]
    fn run_ahead_window_is_configurable() {
        let nodes: Vec<SimNode> = (0..6)
            .map(|i| SimNode::new(format!("mv{i}"), 5.0, GIB, 2 * GIB))
            .collect();
        let w = SimWorkload::from_parts(nodes, []).unwrap();
        let p = plan(&[0, 1, 2, 3, 4, 5], &[], 6);
        let wide = Simulator::new(SimConfig::paper(GIB).with_lanes(4))
            .run(&w, &p)
            .unwrap();
        // A zero window serializes starts to the computed prefix: strictly
        // slower than the default window, but still completes.
        let narrow = Simulator::new(SimConfig::paper(GIB).with_lanes(4).with_run_ahead_window(0))
            .run(&w, &p)
            .unwrap();
        assert!(narrow.total_s > wide.total_s);
    }

    /// Flagging still helps under lanes: consumers read the hub from
    /// memory and the hub's write is backgrounded.
    #[test]
    fn multi_lane_flagging_still_wins() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(10 * GIB).with_lanes(2));
        let base = sim.run(&w, &plan(&[0, 1, 2], &[], 3)).unwrap();
        let sc = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        assert!(sc.total_s < base.total_s);
        assert_eq!(sc.nodes[1].disk_read_s, 0.0);
        assert_eq!(sc.nodes[2].disk_read_s, 0.0);
        assert_eq!(sc.peak_memory_bytes, 8 * GIB);
    }
}
