use serde::{Deserialize, Serialize};

use sc_core::{CostModel, Plan};


use crate::report::{NodeTimeline, SimReport};
use crate::workload::SimWorkload;

/// Simulation parameters.
///
/// Bandwidths default to the paper's measured environment (§VI-A). The
/// scaling knobs model the §VI-G cluster experiments
/// (`compute_scale`/`io_scale`) and the §VI-D "Memory Catalog from query
/// memory" variant (`compute_penalty`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// External-storage read bandwidth, bytes/s.
    pub disk_read_bps: f64,
    /// External-storage write bandwidth, bytes/s.
    pub disk_write_bps: f64,
    /// Memory Catalog bandwidth, bytes/s.
    pub mem_bps: f64,
    /// Fixed storage access latency, seconds.
    pub disk_latency_s: f64,
    /// Memory Catalog size `M`, bytes.
    pub memory_budget: u64,
    /// Node compute times are divided by this (cluster speedup).
    pub compute_scale: f64,
    /// Storage bandwidths are multiplied by this (cluster has more disks).
    pub io_scale: f64,
    /// Fixed serial overhead added per node (query launch, coordination);
    /// does not shrink with cluster size.
    pub per_node_overhead_s: f64,
    /// Relative compute slowdown from shrinking DBMS query memory to make
    /// room for the Memory Catalog (0.0 when using spare memory).
    pub compute_penalty: f64,
}

impl SimConfig {
    /// The paper's single-node environment with Memory Catalog `budget`.
    pub fn paper(budget: u64) -> Self {
        SimConfig {
            disk_read_bps: 519.8e6,
            disk_write_bps: 358.9e6,
            mem_bps: 8.0 * (1u64 << 30) as f64,
            disk_latency_s: 175e-6,
            memory_budget: budget,
            compute_scale: 1.0,
            io_scale: 1.0,
            per_node_overhead_s: 0.15,
            compute_penalty: 0.0,
        }
    }

    /// The cost model the optimizer should use under this configuration.
    pub fn cost_model(&self) -> CostModel {
        CostModel {
            disk_read_bps: self.disk_read_bps * self.io_scale,
            disk_write_bps: self.disk_write_bps * self.io_scale,
            mem_bps: self.mem_bps,
            disk_latency_s: self.disk_latency_s,
        }
    }

    fn disk_read_time(&self, bytes: u64) -> f64 {
        self.disk_latency_s + bytes as f64 / (self.disk_read_bps * self.io_scale)
    }

    fn disk_write_time(&self, bytes: u64) -> f64 {
        self.disk_latency_s + bytes as f64 / (self.disk_write_bps * self.io_scale)
    }

    fn mem_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.mem_bps
    }

    fn compute_time(&self, seconds: f64) -> f64 {
        seconds * (1.0 + self.compute_penalty) / self.compute_scale
    }
}

/// Deterministic single-lane refresh-run simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Simulates the sequential, nothing-flagged baseline ("No
    /// optimization" in Figure 9) using a deterministic topological order.
    pub fn run_unoptimized(&self, workload: &SimWorkload) -> sc_dag::Result<SimReport> {
        let order = workload.graph.kahn_order();
        self.run(workload, &Plan::unoptimized(order))
    }

    /// Simulates a refresh run under `plan`, reproducing the engine
    /// controller's semantics (background materialization, release on
    /// last-consumer + write-done, fallback under memory pressure).
    pub fn run(&self, workload: &SimWorkload, plan: &Plan) -> sc_dag::Result<SimReport> {
        let graph = &workload.graph;
        let n = graph.len();
        graph.validate_order(&plan.order)?;
        let pos = graph.order_positions(&plan.order)?;
        let cfg = &self.config;

        let mut resident = vec![false; n]; // currently in Memory Catalog
        let mut write_done = vec![f64::INFINITY; n];
        let mut mem_used: u64 = 0;
        let mut peak_mem: u64 = 0;
        let mut writer_free_at = 0.0f64;
        let mut now = 0.0f64;
        let mut timelines = Vec::with_capacity(n);

        // Release every resident node whose consumers have all executed
        // (position < p). Per §III-C the entry is freed as soon as its
        // dependents complete; the in-flight background write holds its own
        // reference, so the catalog budget is released immediately.
        let release_pass = |resident: &mut Vec<bool>,
                            mem_used: &mut u64,
                            _write_done: &[f64],
                            p: usize,
                            _time: f64| {
            for u in graph.node_ids() {
                if resident[u.index()]
                    && graph.children(u).iter().all(|c| pos[c.index()] < p)
                {
                    resident[u.index()] = false;
                    *mem_used -= graph.node(u).output_bytes;
                }
            }
        };

        for (p, &v) in plan.order.iter().enumerate() {
            let node = graph.node(v);
            now += cfg.per_node_overhead_s;
            let start = now;
            release_pass(&mut resident, &mut mem_used, &write_done, p, now);

            // Read inputs: base tables always from storage; parent outputs
            // from memory when resident.
            let mut read_s = 0.0;
            let mut disk_read_s = 0.0;
            if node.base_read_bytes > 0 {
                let t = cfg.disk_read_time(node.base_read_bytes);
                read_s += t;
                disk_read_s += t;
            }
            for &parent in graph.parents(v) {
                let bytes = graph.node(parent).output_bytes;
                if resident[parent.index()] {
                    read_s += cfg.mem_time(bytes);
                } else {
                    let t = cfg.disk_read_time(bytes);
                    read_s += t;
                    disk_read_s += t;
                }
            }

            let compute_s = cfg.compute_time(node.compute_s);
            let mut available = start + read_s + compute_s;

            let flagged = plan.flagged.contains(v);
            let mut fell_back = false;
            let mut write_s = 0.0;
            let persisted;

            // A childless flagged node has no consumers: it is created in
            // memory only to background its write and never occupies the
            // catalog (it is outside every Vi in the optimizer's model).
            let occupies = graph.out_degree(v) > 0;
            if flagged {
                release_pass(&mut resident, &mut mem_used, &write_done, p, available);
                if !occupies {
                    available += cfg.mem_time(node.output_bytes);
                    let wstart = available.max(writer_free_at);
                    let done = wstart + cfg.disk_write_time(node.output_bytes);
                    write_done[v.index()] = done;
                    writer_free_at = done;
                    persisted = done;
                    now = available;
                } else if mem_used + node.output_bytes <= cfg.memory_budget {
                    // Creating in memory costs one memory write.
                    available += cfg.mem_time(node.output_bytes);
                    resident[v.index()] = true;
                    mem_used += node.output_bytes;
                    peak_mem = peak_mem.max(mem_used);
                    let wstart = available.max(writer_free_at);
                    let done = wstart + cfg.disk_write_time(node.output_bytes);
                    write_done[v.index()] = done;
                    writer_free_at = done;
                    persisted = done;
                    now = available;
                } else {
                    // Memory pressure: blocking write instead.
                    fell_back = true;
                    let wstart = available.max(writer_free_at);
                    let done = wstart + cfg.disk_write_time(node.output_bytes);
                    writer_free_at = done;
                    write_done[v.index()] = done;
                    write_s = done - available;
                    persisted = done;
                    now = done;
                }
            } else {
                let wstart = available.max(writer_free_at);
                let done = wstart + cfg.disk_write_time(node.output_bytes);
                writer_free_at = done;
                write_done[v.index()] = done;
                write_s = done - available;
                persisted = done;
                now = done;
            }

            timelines.push(NodeTimeline {
                name: node.name.clone(),
                start_s: start,
                read_s,
                disk_read_s,
                compute_s,
                write_s,
                available_s: available,
                persisted_s: persisted,
                flagged: flagged && !fell_back,
                fell_back,
            });
        }

        let total_s = now.max(writer_free_at);
        Ok(SimReport { total_s, nodes: timelines, peak_memory_bytes: peak_mem })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SimNode;
    use sc_dag::NodeId;
    use sc_core::FlagSet;

    const GIB: u64 = 1 << 30;

    /// Figure 4 workload: mv1 (8 GiB from 16 GiB of base data) feeds mv2
    /// and mv3.
    fn fig4() -> SimWorkload {
        SimWorkload::from_parts(
            [
                SimNode::new("mv1", 5.0, 8 * GIB, 16 * GIB),
                SimNode::new("mv2", 3.0, GIB, 0),
                SimNode::new("mv3", 3.0, GIB, 0),
            ],
            [(0, 1), (0, 2)],
        )
        .unwrap()
    }

    fn plan(order: &[usize], flagged: &[usize], n: usize) -> Plan {
        Plan {
            order: order.iter().map(|&i| NodeId(i)).collect(),
            flagged: FlagSet::from_nodes(n, flagged.iter().map(|&i| NodeId(i))),
        }
    }

    #[test]
    fn baseline_time_decomposes() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(10 * GIB));
        let r = sim.run_unoptimized(&w).unwrap();
        let cfg = sim.config();
        let expected: f64 = 3.0 * cfg.per_node_overhead_s
            + cfg.disk_read_time(16 * GIB)
            + cfg.compute_time(5.0)
            + cfg.disk_write_time(8 * GIB)
            + 2.0 * (cfg.disk_read_time(8 * GIB) + cfg.compute_time(3.0) + cfg.disk_write_time(GIB));
        assert!((r.total_s - expected).abs() < 1e-6, "got {}, want {}", r.total_s, expected);
        assert_eq!(r.peak_memory_bytes, 0);
        assert_eq!(r.fallbacks(), 0);
    }

    #[test]
    fn flagging_hides_write_and_reads() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(10 * GIB));
        let base = sim.run_unoptimized(&w).unwrap();
        let sc = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        assert!(sc.total_s < base.total_s);
        // mv1's write is backgrounded.
        assert_eq!(sc.nodes[0].write_s, 0.0);
        assert!(sc.nodes[0].flagged);
        // Consumers read from memory: their disk read time is 0.
        assert_eq!(sc.nodes[1].disk_read_s, 0.0);
        assert_eq!(sc.nodes[2].disk_read_s, 0.0);
        // Peak memory equals mv1's size.
        assert_eq!(sc.peak_memory_bytes, 8 * GIB);
        // Everything still persisted by the end.
        assert!(sc.nodes.iter().all(|n| n.persisted_s <= sc.total_s + 1e-9));
    }

    #[test]
    fn speedup_magnitude_matches_hand_computation() {
        // Long downstream computes so the background write never blocks a
        // later blocking write (no channel contention to reason about).
        let w = SimWorkload::from_parts(
            [
                SimNode::new("mv1", 5.0, 8 * GIB, 16 * GIB),
                SimNode::new("mv2", 30.0, GIB, 0),
                SimNode::new("mv3", 30.0, GIB, 0),
            ],
            [(0, 1), (0, 2)],
        )
        .unwrap();
        let cfg = SimConfig::paper(10 * GIB);
        let sim = Simulator::new(cfg.clone());
        let base = sim.run_unoptimized(&w).unwrap();
        let sc = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        // Savings = write(8 GiB) hidden + 2 disk reads of 8 GiB replaced by
        // memory reads, minus the cost of creating mv1 in memory.
        let saving = cfg.disk_write_time(8 * GIB)
            + 2.0 * (cfg.disk_read_time(8 * GIB) - cfg.mem_time(8 * GIB))
            - cfg.mem_time(8 * GIB);
        assert!(
            ((base.total_s - sc.total_s) - saving).abs() < 1e-6,
            "measured saving {} vs expected {}",
            base.total_s - sc.total_s,
            saving
        );
    }

    #[test]
    fn memory_pressure_falls_back() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(GIB)); // mv1 won't fit
        let sc = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        assert_eq!(sc.fallbacks(), 1);
        assert!(!sc.nodes[0].flagged);
        assert!(sc.nodes[0].write_s > 0.0);
        // Equivalent to baseline since nothing stayed in memory.
        let base = sim.run_unoptimized(&w).unwrap();
        assert!((sc.total_s - base.total_s).abs() < 1e-9);
    }

    #[test]
    fn release_frees_budget_for_later_flags() {
        // Chain a -> b -> c with budget for one intermediate at a time.
        let w = SimWorkload::from_parts(
            [
                SimNode::new("a", 1.0, 4 * GIB, 8 * GIB),
                SimNode::new("b", 1.0, 4 * GIB, 0),
                SimNode::new("c", 1.0, GIB, 0),
            ],
            [(0, 1), (1, 2)],
        )
        .unwrap();
        let sim = Simulator::new(SimConfig::paper(4 * GIB));
        let r = sim.run(&w, &plan(&[0, 1, 2], &[0, 1], 3)).unwrap();
        // Both fit sequentially: a is released once b (its only consumer)
        // has run and a's background write finished — before c needs room…
        // b's creation happens *while* a is still resident, so b must fall
        // back; a alone fits.
        assert!(r.nodes[0].flagged);
        assert!(r.nodes[1].fell_back);
        assert_eq!(r.peak_memory_bytes, 4 * GIB);
    }

    #[test]
    fn background_writes_queue_fifo() {
        // Two flagged nodes in a row: the second's background write waits
        // for the first's.
        let w = SimWorkload::from_parts(
            [
                SimNode::new("a", 1.0, 4 * GIB, GIB),
                SimNode::new("b", 1.0, 4 * GIB, GIB),
                SimNode::new("consumer", 0.1, 1024, 0),
            ],
            [(0, 2), (1, 2)],
        )
        .unwrap();
        let sim = Simulator::new(SimConfig::paper(16 * GIB));
        let r = sim.run(&w, &plan(&[0, 1, 2], &[0, 1], 3)).unwrap();
        let cfg = sim.config();
        let w1_done = r.nodes[0].persisted_s;
        let w2_done = r.nodes[1].persisted_s;
        assert!(w2_done >= w1_done + cfg.disk_write_time(4 * GIB) - 1e-9);
        // End-to-end is bounded by the write channel draining.
        assert!((r.total_s - w2_done.max(r.nodes[2].persisted_s)).abs() < 1e-9);
    }

    #[test]
    fn cluster_scaling_shrinks_runtime() {
        let w = fig4();
        let mut cfg = SimConfig::paper(10 * GIB);
        let t1 = Simulator::new(cfg.clone()).run_unoptimized(&w).unwrap().total_s;
        cfg.compute_scale = 4.0;
        cfg.io_scale = 4.0;
        let t4 = Simulator::new(cfg).run_unoptimized(&w).unwrap().total_s;
        assert!(t4 < t1 / 2.0, "4-way scaling must at least halve runtime");
        // …but not by the full 4× because per-node overhead is serial.
        assert!(t4 > t1 / 4.0);
    }

    #[test]
    fn query_memory_penalty_slows_compute_only() {
        let w = fig4();
        let mut cfg = SimConfig::paper(10 * GIB);
        let plain = Simulator::new(cfg.clone()).run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        cfg.compute_penalty = 0.1;
        let taxed = Simulator::new(cfg).run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        assert!(taxed.total_s > plain.total_s);
        assert!((taxed.total_compute_s() - plain.total_compute_s() * 1.1).abs() < 1e-9);
        assert_eq!(taxed.total_disk_read_s(), plain.total_disk_read_s());
    }

    #[test]
    fn invalid_order_rejected() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(GIB));
        assert!(sim.run(&w, &plan(&[1, 0, 2], &[], 3)).is_err());
    }
}
