use serde::{Deserialize, Serialize};

use sc_core::{CostModel, Plan};

use crate::report::{NodeTimeline, SimReport};
use crate::workload::SimWorkload;

/// Simulation parameters.
///
/// Bandwidths default to the paper's measured environment (§VI-A). The
/// scaling knobs model the §VI-G cluster experiments
/// (`compute_scale`/`io_scale`) and the §VI-D "Memory Catalog from query
/// memory" variant (`compute_penalty`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// External-storage read bandwidth, bytes/s.
    pub disk_read_bps: f64,
    /// External-storage write bandwidth, bytes/s.
    pub disk_write_bps: f64,
    /// Memory Catalog bandwidth, bytes/s.
    pub mem_bps: f64,
    /// Fixed storage access latency, seconds.
    pub disk_latency_s: f64,
    /// Memory Catalog size `M`, bytes.
    pub memory_budget: u64,
    /// Node compute times are divided by this (cluster speedup).
    pub compute_scale: f64,
    /// Storage bandwidths are multiplied by this (cluster has more disks).
    pub io_scale: f64,
    /// Fixed serial overhead added per node (query launch, coordination);
    /// does not shrink with cluster size.
    pub per_node_overhead_s: f64,
    /// Relative compute slowdown from shrinking DBMS query memory to make
    /// room for the Memory Catalog (0.0 when using spare memory).
    pub compute_penalty: f64,
    /// Number of compute lanes executing DAG nodes concurrently. `1` is
    /// the paper's sequential controller; larger values mirror the
    /// engine's multi-lane executor (nodes start as soon as all
    /// dependencies are readable and a lane is free, flag admission
    /// follows plan order).
    pub lanes: usize,
}

impl SimConfig {
    /// The paper's single-node environment with Memory Catalog `budget`.
    pub fn paper(budget: u64) -> Self {
        SimConfig {
            disk_read_bps: 519.8e6,
            disk_write_bps: 358.9e6,
            mem_bps: 8.0 * (1u64 << 30) as f64,
            disk_latency_s: 175e-6,
            memory_budget: budget,
            compute_scale: 1.0,
            io_scale: 1.0,
            per_node_overhead_s: 0.15,
            compute_penalty: 0.0,
            lanes: 1,
        }
    }

    /// The same environment with `lanes` compute lanes.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// The cost model the optimizer should use under this configuration.
    pub fn cost_model(&self) -> CostModel {
        CostModel {
            disk_read_bps: self.disk_read_bps * self.io_scale,
            disk_write_bps: self.disk_write_bps * self.io_scale,
            mem_bps: self.mem_bps,
            disk_latency_s: self.disk_latency_s,
        }
    }

    fn disk_read_time(&self, bytes: u64) -> f64 {
        self.disk_latency_s + bytes as f64 / (self.disk_read_bps * self.io_scale)
    }

    fn disk_write_time(&self, bytes: u64) -> f64 {
        self.disk_latency_s + bytes as f64 / (self.disk_write_bps * self.io_scale)
    }

    fn mem_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.mem_bps
    }

    fn compute_time(&self, seconds: f64) -> f64 {
        seconds * (1.0 + self.compute_penalty) / self.compute_scale
    }
}

/// Deterministic single-lane refresh-run simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Simulates the sequential, nothing-flagged baseline ("No
    /// optimization" in Figure 9) using a deterministic topological order.
    pub fn run_unoptimized(&self, workload: &SimWorkload) -> sc_dag::Result<SimReport> {
        let order = workload.graph.kahn_order();
        self.run(workload, &Plan::unoptimized(order))
    }

    /// Simulates a refresh run under `plan`, reproducing the engine
    /// controller's semantics (background materialization, release on
    /// last-consumer + write-done, fallback under memory pressure). With
    /// `config.lanes > 1` the run mirrors the engine's multi-lane
    /// executor instead of the paper's sequential one.
    pub fn run(&self, workload: &SimWorkload, plan: &Plan) -> sc_dag::Result<SimReport> {
        workload.graph.validate_order(&plan.order)?;
        let pos = workload.graph.order_positions(&plan.order)?;
        if self.config.lanes <= 1 {
            self.run_single_lane(workload, plan, &pos)
        } else {
            self.run_multi_lane(workload, plan, &pos)
        }
    }

    /// The paper's sequential controller: one compute lane walking
    /// `plan.order`, one shared storage write channel.
    fn run_single_lane(
        &self,
        workload: &SimWorkload,
        plan: &Plan,
        pos: &[usize],
    ) -> sc_dag::Result<SimReport> {
        let graph = &workload.graph;
        let n = graph.len();
        let cfg = &self.config;

        let mut resident = vec![false; n]; // currently in Memory Catalog
        let mut write_done = vec![f64::INFINITY; n];
        let mut mem_used: u64 = 0;
        let mut peak_mem: u64 = 0;
        let mut writer_free_at = 0.0f64;
        let mut now = 0.0f64;
        let mut timelines = Vec::with_capacity(n);

        // Release every resident node whose consumers have all executed
        // (position < p). Per §III-C the entry is freed as soon as its
        // dependents complete; the in-flight background write holds its own
        // reference, so the catalog budget is released immediately.
        let release_pass = |resident: &mut Vec<bool>,
                            mem_used: &mut u64,
                            _write_done: &[f64],
                            p: usize,
                            _time: f64| {
            for u in graph.node_ids() {
                if resident[u.index()] && graph.children(u).iter().all(|c| pos[c.index()] < p) {
                    resident[u.index()] = false;
                    *mem_used -= graph.node(u).output_bytes;
                }
            }
        };

        for (p, &v) in plan.order.iter().enumerate() {
            let node = graph.node(v);
            now += cfg.per_node_overhead_s;
            let start = now;
            release_pass(&mut resident, &mut mem_used, &write_done, p, now);

            // Read inputs: base tables always from storage; parent outputs
            // from memory when resident.
            let mut read_s = 0.0;
            let mut disk_read_s = 0.0;
            if node.base_read_bytes > 0 {
                let t = cfg.disk_read_time(node.base_read_bytes);
                read_s += t;
                disk_read_s += t;
            }
            for &parent in graph.parents(v) {
                let bytes = graph.node(parent).output_bytes;
                if resident[parent.index()] {
                    read_s += cfg.mem_time(bytes);
                } else {
                    let t = cfg.disk_read_time(bytes);
                    read_s += t;
                    disk_read_s += t;
                }
            }

            let compute_s = cfg.compute_time(node.compute_s);
            let mut available = start + read_s + compute_s;

            let flagged = plan.flagged.contains(v);
            let mut fell_back = false;
            let mut write_s = 0.0;
            let persisted;

            // A childless flagged node has no consumers: it is created in
            // memory only to background its write and never occupies the
            // catalog (it is outside every Vi in the optimizer's model).
            let occupies = graph.out_degree(v) > 0;
            if flagged {
                release_pass(&mut resident, &mut mem_used, &write_done, p, available);
                if !occupies {
                    available += cfg.mem_time(node.output_bytes);
                    let wstart = available.max(writer_free_at);
                    let done = wstart + cfg.disk_write_time(node.output_bytes);
                    write_done[v.index()] = done;
                    writer_free_at = done;
                    persisted = done;
                    now = available;
                } else if mem_used + node.output_bytes <= cfg.memory_budget {
                    // Creating in memory costs one memory write.
                    available += cfg.mem_time(node.output_bytes);
                    resident[v.index()] = true;
                    mem_used += node.output_bytes;
                    peak_mem = peak_mem.max(mem_used);
                    let wstart = available.max(writer_free_at);
                    let done = wstart + cfg.disk_write_time(node.output_bytes);
                    write_done[v.index()] = done;
                    writer_free_at = done;
                    persisted = done;
                    now = available;
                } else {
                    // Memory pressure: blocking write instead.
                    fell_back = true;
                    let wstart = available.max(writer_free_at);
                    let done = wstart + cfg.disk_write_time(node.output_bytes);
                    writer_free_at = done;
                    write_done[v.index()] = done;
                    write_s = done - available;
                    persisted = done;
                    now = done;
                }
            } else {
                let wstart = available.max(writer_free_at);
                let done = wstart + cfg.disk_write_time(node.output_bytes);
                writer_free_at = done;
                write_done[v.index()] = done;
                write_s = done - available;
                persisted = done;
                now = done;
            }

            timelines.push(NodeTimeline {
                name: node.name.clone(),
                start_s: start,
                read_s,
                disk_read_s,
                compute_s,
                write_s,
                available_s: available,
                persisted_s: persisted,
                flagged: flagged && !fell_back,
                fell_back,
            });
        }

        let total_s = now.max(writer_free_at);
        Ok(SimReport {
            total_s,
            nodes: timelines,
            peak_memory_bytes: peak_mem,
        })
    }

    /// Discrete-event mirror of the engine's multi-lane executor: up to
    /// `lanes` nodes run concurrently, each starting once every dependency
    /// is readable, a lane is free, and the node is within the bounded
    /// run-ahead window of the computed plan-order prefix (ready work is
    /// dispatched in plan order). Flag admission replays the single-lane
    /// Memory Catalog accounting deterministically: a flagged node's
    /// admit-or-fallback outcome is precomputed in plan order, and the
    /// admission itself waits until every node earlier in the plan has
    /// computed. Background materializations share one FIFO write channel;
    /// blocking writes — including memory-pressure fallbacks — occupy a
    /// worker lane, as in the engine's pool.
    fn run_multi_lane(
        &self,
        workload: &SimWorkload,
        plan: &Plan,
        pos: &[usize],
    ) -> sc_dag::Result<SimReport> {
        use std::cmp::Reverse;
        use std::collections::{BTreeMap, BinaryHeap};

        let graph = &workload.graph;
        let n = graph.len();
        let cfg = &self.config;
        let lanes = cfg.lanes.min(n.max(1));
        let window = sc_core::run_ahead_window(lanes);

        /// Heap entries ordered by time then insertion sequence, so the
        /// simulation is fully deterministic.
        #[derive(Debug, Clone, Copy, PartialEq)]
        struct Key(f64, u64);
        impl Eq for Key {}
        impl PartialOrd for Key {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Key {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
            }
        }

        #[derive(Debug, Clone, Copy)]
        enum Event {
            /// A node finished read+compute.
            ComputeEnd(usize),
            /// A flagged node's in-memory creation finished; it may now be
            /// admitted (in plan order, once the prefix reaches it).
            AdmitReady(usize),
            /// A node's output became readable by consumers.
            Publish(usize),
            /// A write finished on a worker lane (fallback writes).
            LaneWriteEnd(usize),
            /// A compute lane became free.
            LaneFree,
        }

        /// Heap element: ordered by key alone (the sequence number makes
        /// keys unique, so this is a total order).
        #[derive(Debug, Clone, Copy)]
        struct Entry(Key, Event);
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.0 == other.0
            }
        }
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0)
            }
        }

        /// A unit of lane work waiting for dispatch.
        #[derive(Debug, Clone, Copy)]
        enum Job {
            Compute(usize),
            /// Blocking materialization of a fallback node's output.
            Write(usize),
        }

        let flagged = |i: usize| plan.flagged.contains(sc_dag::NodeId(i));
        let occupies = |i: usize| graph.out_degree(sc_dag::NodeId(i)) > 0;
        let size_of = |i: usize| graph.node(sc_dag::NodeId(i)).output_bytes;
        let admission_order: Vec<usize> = plan
            .order
            .iter()
            .map(|v| v.index())
            .filter(|&i| flagged(i) && occupies(i))
            .collect();

        let mut pending_parents = vec![0usize; n];
        let mut remaining_children = vec![0usize; n];
        for (a, b) in graph.edges() {
            remaining_children[a.index()] += 1;
            pending_parents[b.index()] += 1;
        }

        // Deterministic replay of the single-lane accounting: fix every
        // flagged node's admit/fallback outcome in plan order upfront
        // (sizes are static in simulation). The replayer is the same type
        // the engine's executor uses, so the two cannot drift apart.
        let admit_decision: Vec<bool> = {
            let parents_of: Vec<Vec<usize>> = (0..n)
                .map(|i| {
                    graph
                        .parents(sc_dag::NodeId(i))
                        .iter()
                        .map(|p| p.index())
                        .collect()
                })
                .collect();
            let sizes: Vec<u64> = (0..n).map(size_of).collect();
            let mut replay = sc_core::AdmissionReplay::new(plan, &parents_of, cfg.memory_budget);
            replay.advance(plan, &parents_of, &vec![true; n], &sizes);
            (0..n)
                .map(|i| replay.decision(i).unwrap_or(false))
                .collect()
        };

        let mut events: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |events: &mut BinaryHeap<Reverse<Entry>>, t: f64, e: Event| {
            events.push(Reverse(Entry(Key(t, seq), e)));
            seq += 1;
        };

        // Ready jobs keyed by plan position so dispatch order is the plan's.
        let mut ready: BTreeMap<usize, Job> = BTreeMap::new();
        let mut lanes_available = lanes;
        let mut computed = vec![false; n];
        let mut prefix = 0usize; // first plan position not yet computed
        let mut created_done = vec![false; n];
        let mut next_admit = 0usize;
        let mut resident = vec![false; n];
        let mut mem_used = 0u64;
        let mut peak_mem = 0u64;
        let mut bg_free_at = 0.0f64; // shared storage write channel
        let mut read_free_at = 0.0f64; // shared storage read channel
        let mut fell_back = vec![false; n];
        let mut start_s = vec![0.0f64; n];
        let mut read_s = vec![0.0f64; n];
        let mut disk_read_s = vec![0.0f64; n];
        let mut compute_s = vec![0.0f64; n];
        let mut write_s = vec![0.0f64; n];
        let mut available_s = vec![0.0f64; n];
        let mut persisted_s = vec![f64::INFINITY; n];
        let mut end_time = 0.0f64;

        for &v in &plan.order {
            if pending_parents[v.index()] == 0 {
                ready.insert(pos[v.index()], Job::Compute(v.index()));
            }
        }

        macro_rules! dispatch {
            ($clock:expr) => {
                while lanes_available > 0 {
                    // First job in plan order that is eligible: writes
                    // always, computes only inside the run-ahead window.
                    let slot = ready
                        .iter()
                        .find(|(p, job)| match job {
                            Job::Write(_) => true,
                            Job::Compute(_) => **p <= prefix + window,
                        })
                        .map(|(&p, &job)| (p, job));
                    let Some((p, job)) = slot else { break };
                    ready.remove(&p);
                    lanes_available -= 1;
                    match job {
                        Job::Compute(i) => {
                            let v = sc_dag::NodeId(i);
                            let node = graph.node(v);
                            start_s[i] = $clock;
                            let mut r = 0.0;
                            let mut dr = 0.0;
                            if node.base_read_bytes > 0 {
                                let t = cfg.disk_read_time(node.base_read_bytes);
                                r += t;
                                dr += t;
                            }
                            for &parent in graph.parents(v) {
                                let bytes = graph.node(parent).output_bytes;
                                if resident[parent.index()] {
                                    r += cfg.mem_time(bytes);
                                } else {
                                    let t = cfg.disk_read_time(bytes);
                                    r += t;
                                    dr += t;
                                }
                            }
                            read_s[i] = r;
                            disk_read_s[i] = dr;
                            compute_s[i] = cfg.compute_time(node.compute_s);
                            // Disk reads reserve a slot on the shared read
                            // channel (one device, as in the engine's
                            // throttle); memory reads and compute don't.
                            let t0 = $clock + cfg.per_node_overhead_s;
                            let read_end = if dr > 0.0 {
                                let rs = t0.max(read_free_at);
                                read_free_at = rs + dr;
                                rs + dr
                            } else {
                                t0
                            };
                            let done = read_end + (r - dr) + compute_s[i];
                            push(&mut events, done, Event::ComputeEnd(i));
                        }
                        Job::Write(i) => {
                            // Fallback write: occupies this lane AND the
                            // shared write channel, like the engine's
                            // Write task hitting the throttled disk.
                            let wstart = ($clock).max(bg_free_at);
                            let done = wstart + cfg.disk_write_time(size_of(i));
                            bg_free_at = done;
                            write_s[i] = done - $clock;
                            persisted_s[i] = done;
                            push(&mut events, done, Event::LaneWriteEnd(i));
                        }
                    }
                }
            };
        }

        macro_rules! process_admissions {
            ($clock:expr) => {
                while next_admit < admission_order.len() {
                    let cand = admission_order[next_admit];
                    // Mirror the engine: admit only when the node's output
                    // exists in memory and every node earlier in the plan
                    // has computed (so the precomputed decision is final).
                    if !created_done[cand] || prefix <= pos[cand] {
                        break;
                    }
                    if admit_decision[cand] {
                        resident[cand] = true;
                        mem_used += size_of(cand);
                        peak_mem = peak_mem.max(mem_used);
                        let wstart = ($clock).max(bg_free_at);
                        let done = wstart + cfg.disk_write_time(size_of(cand));
                        bg_free_at = done;
                        persisted_s[cand] = done;
                        push(&mut events, $clock, Event::Publish(cand));
                    } else {
                        // Memory pressure: blocking write on a worker lane,
                        // exactly like the engine's fallback Write task.
                        fell_back[cand] = true;
                        ready.insert(pos[cand], Job::Write(cand));
                    }
                    next_admit += 1;
                }
            };
        }

        dispatch!(0.0f64);

        while let Some(Reverse(Entry(Key(clock, _), event))) = events.pop() {
            end_time = end_time.max(clock);
            match event {
                Event::ComputeEnd(i) => {
                    let v = sc_dag::NodeId(i);
                    computed[i] = true;
                    while prefix < n && computed[plan.order[prefix].index()] {
                        prefix += 1;
                    }
                    // This node consumed its parents: release entries whose
                    // consumers have now all executed.
                    for &parent in graph.parents(v) {
                        let p = parent.index();
                        remaining_children[p] -= 1;
                        if remaining_children[p] == 0 && resident[p] {
                            resident[p] = false;
                            mem_used -= size_of(p);
                        }
                    }
                    let out = size_of(i);
                    if flagged(i) && !occupies(i) {
                        // Childless flagged node: created in memory only to
                        // background its write; never occupies the catalog.
                        let created = clock + cfg.mem_time(out);
                        available_s[i] = created;
                        let wstart = created.max(bg_free_at);
                        let done = wstart + cfg.disk_write_time(out);
                        bg_free_at = done;
                        persisted_s[i] = done;
                        push(&mut events, created, Event::LaneFree);
                        push(&mut events, created, Event::Publish(i));
                    } else if flagged(i) {
                        // Create in memory on this lane, then wait for
                        // plan-order admission.
                        let created = clock + cfg.mem_time(out);
                        available_s[i] = created;
                        push(&mut events, created, Event::LaneFree);
                        push(&mut events, created, Event::AdmitReady(i));
                    } else {
                        // Blocking write on this lane, through the shared
                        // write channel (one storage device).
                        available_s[i] = clock;
                        let wstart = clock.max(bg_free_at);
                        let done = wstart + cfg.disk_write_time(out);
                        bg_free_at = done;
                        write_s[i] = done - clock;
                        persisted_s[i] = done;
                        push(&mut events, done, Event::LaneFree);
                        push(&mut events, done, Event::Publish(i));
                    }
                    process_admissions!(clock);
                    dispatch!(clock);
                }
                Event::AdmitReady(i) => {
                    created_done[i] = true;
                    process_admissions!(clock);
                    dispatch!(clock);
                }
                Event::LaneWriteEnd(i) => {
                    lanes_available += 1;
                    push(&mut events, clock, Event::Publish(i));
                    dispatch!(clock);
                }
                Event::Publish(i) => {
                    for &child in graph.children(sc_dag::NodeId(i)) {
                        let c = child.index();
                        pending_parents[c] -= 1;
                        if pending_parents[c] == 0 {
                            ready.insert(pos[c], Job::Compute(c));
                        }
                    }
                    dispatch!(clock);
                }
                Event::LaneFree => {
                    lanes_available += 1;
                    dispatch!(clock);
                }
            }
        }

        let total_s = end_time.max(bg_free_at);
        let timelines = plan
            .order
            .iter()
            .map(|&v| {
                let i = v.index();
                NodeTimeline {
                    name: graph.node(v).name.clone(),
                    start_s: start_s[i],
                    read_s: read_s[i],
                    disk_read_s: disk_read_s[i],
                    compute_s: compute_s[i],
                    write_s: write_s[i],
                    available_s: available_s[i],
                    persisted_s: persisted_s[i],
                    flagged: flagged(i) && !fell_back[i],
                    fell_back: fell_back[i],
                }
            })
            .collect();
        Ok(SimReport {
            total_s,
            nodes: timelines,
            peak_memory_bytes: peak_mem,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SimNode;
    use sc_core::FlagSet;
    use sc_dag::NodeId;

    const GIB: u64 = 1 << 30;

    /// Figure 4 workload: mv1 (8 GiB from 16 GiB of base data) feeds mv2
    /// and mv3.
    fn fig4() -> SimWorkload {
        SimWorkload::from_parts(
            [
                SimNode::new("mv1", 5.0, 8 * GIB, 16 * GIB),
                SimNode::new("mv2", 3.0, GIB, 0),
                SimNode::new("mv3", 3.0, GIB, 0),
            ],
            [(0, 1), (0, 2)],
        )
        .unwrap()
    }

    fn plan(order: &[usize], flagged: &[usize], n: usize) -> Plan {
        Plan {
            order: order.iter().map(|&i| NodeId(i)).collect(),
            flagged: FlagSet::from_nodes(n, flagged.iter().map(|&i| NodeId(i))),
        }
    }

    #[test]
    fn baseline_time_decomposes() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(10 * GIB));
        let r = sim.run_unoptimized(&w).unwrap();
        let cfg = sim.config();
        let expected: f64 = 3.0 * cfg.per_node_overhead_s
            + cfg.disk_read_time(16 * GIB)
            + cfg.compute_time(5.0)
            + cfg.disk_write_time(8 * GIB)
            + 2.0
                * (cfg.disk_read_time(8 * GIB) + cfg.compute_time(3.0) + cfg.disk_write_time(GIB));
        assert!(
            (r.total_s - expected).abs() < 1e-6,
            "got {}, want {}",
            r.total_s,
            expected
        );
        assert_eq!(r.peak_memory_bytes, 0);
        assert_eq!(r.fallbacks(), 0);
    }

    #[test]
    fn flagging_hides_write_and_reads() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(10 * GIB));
        let base = sim.run_unoptimized(&w).unwrap();
        let sc = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        assert!(sc.total_s < base.total_s);
        // mv1's write is backgrounded.
        assert_eq!(sc.nodes[0].write_s, 0.0);
        assert!(sc.nodes[0].flagged);
        // Consumers read from memory: their disk read time is 0.
        assert_eq!(sc.nodes[1].disk_read_s, 0.0);
        assert_eq!(sc.nodes[2].disk_read_s, 0.0);
        // Peak memory equals mv1's size.
        assert_eq!(sc.peak_memory_bytes, 8 * GIB);
        // Everything still persisted by the end.
        assert!(sc.nodes.iter().all(|n| n.persisted_s <= sc.total_s + 1e-9));
    }

    #[test]
    fn speedup_magnitude_matches_hand_computation() {
        // Long downstream computes so the background write never blocks a
        // later blocking write (no channel contention to reason about).
        let w = SimWorkload::from_parts(
            [
                SimNode::new("mv1", 5.0, 8 * GIB, 16 * GIB),
                SimNode::new("mv2", 30.0, GIB, 0),
                SimNode::new("mv3", 30.0, GIB, 0),
            ],
            [(0, 1), (0, 2)],
        )
        .unwrap();
        let cfg = SimConfig::paper(10 * GIB);
        let sim = Simulator::new(cfg.clone());
        let base = sim.run_unoptimized(&w).unwrap();
        let sc = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        // Savings = write(8 GiB) hidden + 2 disk reads of 8 GiB replaced by
        // memory reads, minus the cost of creating mv1 in memory.
        let saving = cfg.disk_write_time(8 * GIB)
            + 2.0 * (cfg.disk_read_time(8 * GIB) - cfg.mem_time(8 * GIB))
            - cfg.mem_time(8 * GIB);
        assert!(
            ((base.total_s - sc.total_s) - saving).abs() < 1e-6,
            "measured saving {} vs expected {}",
            base.total_s - sc.total_s,
            saving
        );
    }

    #[test]
    fn memory_pressure_falls_back() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(GIB)); // mv1 won't fit
        let sc = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        assert_eq!(sc.fallbacks(), 1);
        assert!(!sc.nodes[0].flagged);
        assert!(sc.nodes[0].write_s > 0.0);
        // Equivalent to baseline since nothing stayed in memory.
        let base = sim.run_unoptimized(&w).unwrap();
        assert!((sc.total_s - base.total_s).abs() < 1e-9);
    }

    #[test]
    fn release_frees_budget_for_later_flags() {
        // Chain a -> b -> c with budget for one intermediate at a time.
        let w = SimWorkload::from_parts(
            [
                SimNode::new("a", 1.0, 4 * GIB, 8 * GIB),
                SimNode::new("b", 1.0, 4 * GIB, 0),
                SimNode::new("c", 1.0, GIB, 0),
            ],
            [(0, 1), (1, 2)],
        )
        .unwrap();
        let sim = Simulator::new(SimConfig::paper(4 * GIB));
        let r = sim.run(&w, &plan(&[0, 1, 2], &[0, 1], 3)).unwrap();
        // Both fit sequentially: a is released once b (its only consumer)
        // has run and a's background write finished — before c needs room…
        // b's creation happens *while* a is still resident, so b must fall
        // back; a alone fits.
        assert!(r.nodes[0].flagged);
        assert!(r.nodes[1].fell_back);
        assert_eq!(r.peak_memory_bytes, 4 * GIB);
    }

    #[test]
    fn background_writes_queue_fifo() {
        // Two flagged nodes in a row: the second's background write waits
        // for the first's.
        let w = SimWorkload::from_parts(
            [
                SimNode::new("a", 1.0, 4 * GIB, GIB),
                SimNode::new("b", 1.0, 4 * GIB, GIB),
                SimNode::new("consumer", 0.1, 1024, 0),
            ],
            [(0, 2), (1, 2)],
        )
        .unwrap();
        let sim = Simulator::new(SimConfig::paper(16 * GIB));
        let r = sim.run(&w, &plan(&[0, 1, 2], &[0, 1], 3)).unwrap();
        let cfg = sim.config();
        let w1_done = r.nodes[0].persisted_s;
        let w2_done = r.nodes[1].persisted_s;
        assert!(w2_done >= w1_done + cfg.disk_write_time(4 * GIB) - 1e-9);
        // End-to-end is bounded by the write channel draining.
        assert!((r.total_s - w2_done.max(r.nodes[2].persisted_s)).abs() < 1e-9);
    }

    #[test]
    fn cluster_scaling_shrinks_runtime() {
        let w = fig4();
        let mut cfg = SimConfig::paper(10 * GIB);
        let t1 = Simulator::new(cfg.clone())
            .run_unoptimized(&w)
            .unwrap()
            .total_s;
        cfg.compute_scale = 4.0;
        cfg.io_scale = 4.0;
        let t4 = Simulator::new(cfg).run_unoptimized(&w).unwrap().total_s;
        assert!(t4 < t1 / 2.0, "4-way scaling must at least halve runtime");
        // …but not by the full 4× because per-node overhead is serial.
        assert!(t4 > t1 / 4.0);
    }

    #[test]
    fn query_memory_penalty_slows_compute_only() {
        let w = fig4();
        let mut cfg = SimConfig::paper(10 * GIB);
        let plain = Simulator::new(cfg.clone())
            .run(&w, &plan(&[0, 1, 2], &[0], 3))
            .unwrap();
        cfg.compute_penalty = 0.1;
        let taxed = Simulator::new(cfg)
            .run(&w, &plan(&[0, 1, 2], &[0], 3))
            .unwrap();
        assert!(taxed.total_s > plain.total_s);
        assert!((taxed.total_compute_s() - plain.total_compute_s() * 1.1).abs() < 1e-9);
        assert_eq!(taxed.total_disk_read_s(), plain.total_disk_read_s());
    }

    #[test]
    fn invalid_order_rejected() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(GIB));
        assert!(sim.run(&w, &plan(&[1, 0, 2], &[], 3)).is_err());
    }

    /// A pure chain admits no parallelism: every timeline and the total
    /// must be identical across lane counts.
    #[test]
    fn multi_lane_chain_matches_single_lane() {
        let w = SimWorkload::from_parts(
            [
                SimNode::new("a", 2.0, 4 * GIB, 8 * GIB),
                SimNode::new("b", 1.0, 2 * GIB, 0),
                SimNode::new("c", 1.0, GIB, 0),
            ],
            [(0, 1), (1, 2)],
        )
        .unwrap();
        for flags in [vec![], vec![0usize], vec![0, 1]] {
            let p = plan(&[0, 1, 2], &flags, 3);
            let one = Simulator::new(SimConfig::paper(16 * GIB))
                .run(&w, &p)
                .unwrap();
            let four = Simulator::new(SimConfig::paper(16 * GIB).with_lanes(4))
                .run(&w, &p)
                .unwrap();
            if flags.is_empty() {
                // Without flags both models serialize through the chain
                // identically.
                assert!(
                    (one.total_s - four.total_s).abs() < 1e-9,
                    "unflagged chain must not change with lanes ({} vs {})",
                    one.total_s,
                    four.total_s
                );
            } else {
                // With flags the multi-lane executor runs blocking writes
                // on their own lanes instead of the shared channel, so it
                // can only be at least as fast.
                assert!(four.total_s <= one.total_s + 1e-9, "flags {flags:?}");
            }
            // The multi-lane executor releases a consumed parent before
            // admitting its consumer, so its peak can only be lower.
            assert!(
                four.peak_memory_bytes <= one.peak_memory_bytes,
                "flags {flags:?}"
            );
        }
    }

    /// Independent heavy nodes: four lanes must cut the wall clock well
    /// below the sequential run.
    #[test]
    fn multi_lane_speeds_up_wide_workload() {
        let nodes: Vec<SimNode> = (0..8)
            .map(|i| SimNode::new(format!("mv{i}"), 10.0, GIB, 2 * GIB))
            .collect();
        let w = SimWorkload::from_parts(nodes, []).unwrap();
        let p = plan(&[0, 1, 2, 3, 4, 5, 6, 7], &[], 8);
        let one = Simulator::new(SimConfig::paper(GIB)).run(&w, &p).unwrap();
        let four = Simulator::new(SimConfig::paper(GIB).with_lanes(4))
            .run(&w, &p)
            .unwrap();
        assert!(
            four.total_s < one.total_s / 2.0,
            "4 lanes ({:.2}s) must at least halve 1 lane ({:.2}s)",
            four.total_s,
            one.total_s
        );
        // All outputs still persisted.
        assert!(four
            .nodes
            .iter()
            .all(|n| n.persisted_s <= four.total_s + 1e-9));
    }

    /// The multi-lane run is a deterministic simulation: identical inputs
    /// give identical reports.
    #[test]
    fn multi_lane_is_deterministic() {
        let w = fig4();
        let p = plan(&[0, 1, 2], &[0], 3);
        let sim = Simulator::new(SimConfig::paper(10 * GIB).with_lanes(3));
        assert_eq!(sim.run(&w, &p).unwrap(), sim.run(&w, &p).unwrap());
    }

    /// Memory pressure falls back in the multi-lane path too, and the
    /// budget is never exceeded.
    #[test]
    fn multi_lane_memory_pressure_falls_back() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(GIB).with_lanes(2)); // mv1 won't fit
        let r = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        assert_eq!(r.fallbacks(), 1);
        assert!(!r.nodes[0].flagged);
        assert!(r.peak_memory_bytes <= GIB);
    }

    /// Flagging still helps under lanes: consumers read the hub from
    /// memory and the hub's write is backgrounded.
    #[test]
    fn multi_lane_flagging_still_wins() {
        let w = fig4();
        let sim = Simulator::new(SimConfig::paper(10 * GIB).with_lanes(2));
        let base = sim.run(&w, &plan(&[0, 1, 2], &[], 3)).unwrap();
        let sc = sim.run(&w, &plan(&[0, 1, 2], &[0], 3)).unwrap();
        assert!(sc.total_s < base.total_s);
        assert_eq!(sc.nodes[1].disk_read_s, 0.0);
        assert_eq!(sc.nodes[2].disk_read_s, 0.0);
        assert_eq!(sc.peak_memory_bytes, 8 * GIB);
    }
}
