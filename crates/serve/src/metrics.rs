//! Serving-tier observability: lock-free counters and a latency
//! histogram, snapshotted into a wire-encodable [`MetricsSnapshot`] and
//! rendered `explain()`-style for humans.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::protocol::{put_u64, DecodeResult, Reader};

/// Number of power-of-two latency buckets: bucket `i` counts requests
/// with `latency_us` in `[2^i, 2^(i+1))` (bucket 0 also absorbs 0–1 µs).
pub const HIST_BUCKETS: usize = 32;

/// Lock-free serving-tier counters, updated by workers on every request.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    reads: AtomicU64,
    queries: AtomicU64,
    ingests: AtomicU64,
    refreshes: AtomicU64,
    stats: AtomicU64,
    errors: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_deadline: AtomicU64,
    malformed: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    latency_us: [AtomicU64; HIST_BUCKETS],
}

/// The request classes the per-class counters distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// `ReadTable`.
    Read,
    /// `Query`.
    Query,
    /// `Ingest`.
    Ingest,
    /// `Refresh`.
    Refresh,
    /// `Stats`.
    Stats,
}

impl ServeMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Records one completed request of class `op` with its latency.
    pub fn record(&self, op: OpClass, latency_us: u64) {
        match op {
            OpClass::Read => &self.reads,
            OpClass::Query => &self.queries,
            OpClass::Ingest => &self.ingests,
            OpClass::Refresh => &self.refreshes,
            OpClass::Stats => &self.stats,
        }
        .fetch_add(1, Ordering::Relaxed);
        let bucket = (64 - latency_us.max(1).leading_zeros() as usize - 1).min(HIST_BUCKETS - 1);
        self.latency_us[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request answered with a typed error.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an admission rejection (`Overloaded`).
    pub fn record_overloaded(&self) {
        self.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a deadline rejection.
    pub fn record_deadline(&self) {
        self.rejected_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a malformed frame.
    pub fn record_malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds received payload bytes.
    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds sent payload bytes.
    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut hist = [0u64; HIST_BUCKETS];
        for (dst, src) in hist.iter_mut().zip(&self.latency_us) {
            *dst = src.load(Ordering::Relaxed);
        }
        MetricsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            ingests: self.ingests.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            stats: self.stats.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            // Cache counters live in the server's `SnapshotCache`; the
            // server merges them in (`MetricsSnapshot::merge_cache`).
            cache_hits: 0,
            cache_misses: 0,
            cache_evicted: 0,
            cache_bytes: 0,
            latency_us: hist,
        }
    }
}

/// A latency quantile derived from the power-of-two histogram.
///
/// Every bucket except the last has a real upper edge, so a quantile
/// landing there is a trustworthy *upper bound*. The last bucket is
/// unbounded — a sample there could be 36 minutes or 36 hours — so a
/// quantile landing in it is reported as [`Quantile::Saturated`] with
/// the bucket's **lower** edge, never dressed up as a finite `<=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantile {
    /// The quantile is at most this many microseconds.
    AtMost(u64),
    /// The quantile fell in the unbounded overflow bucket: it is at
    /// *least* this many microseconds, with no upper bound known.
    Saturated(u64),
}

impl Quantile {
    /// A conservative numeric stand-in: the bound for
    /// [`Quantile::AtMost`], `u64::MAX` for [`Quantile::Saturated`]
    /// (whose true value is unbounded).
    pub fn as_micros_upper(self) -> u64 {
        match self {
            Quantile::AtMost(us) => us,
            Quantile::Saturated(_) => u64::MAX,
        }
    }

    fn render(self) -> String {
        match self {
            Quantile::AtMost(us) => format!("<= {us} us"),
            Quantile::Saturated(lo) => format!(">= {lo} us (overflow bucket)"),
        }
    }
}

/// A wire-encodable point-in-time copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Completed `ReadTable` requests.
    pub reads: u64,
    /// Completed `Query` requests.
    pub queries: u64,
    /// Completed `Ingest` requests.
    pub ingests: u64,
    /// Completed `Refresh` requests.
    pub refreshes: u64,
    /// Completed `Stats` requests.
    pub stats: u64,
    /// Requests answered with a typed error frame.
    pub errors: u64,
    /// Connections rejected by admission control.
    pub rejected_overloaded: u64,
    /// Requests rejected for exceeding their deadline.
    pub rejected_deadline: u64,
    /// Malformed frames answered with a typed error.
    pub malformed: u64,
    /// Request payload bytes received.
    pub bytes_in: u64,
    /// Response payload bytes sent.
    pub bytes_out: u64,
    /// Read-class requests served from the shared-snapshot cache.
    pub cache_hits: u64,
    /// Read-class requests that took the full pinned read path.
    pub cache_misses: u64,
    /// Snapshot-cache entries evicted (epoch horizon + LRU).
    pub cache_evicted: u64,
    /// Bytes currently held by the snapshot cache.
    pub cache_bytes: u64,
    /// Power-of-two latency buckets (µs), successful requests only.
    pub latency_us: [u64; HIST_BUCKETS],
}

impl MetricsSnapshot {
    /// Total completed requests across classes.
    pub fn requests(&self) -> u64 {
        self.reads + self.queries + self.ingests + self.refreshes + self.stats
    }

    /// The bucketed quantile `q` in `[0,1]`, or `None` with an empty
    /// histogram. Every bucket but the last yields a trustworthy
    /// [`Quantile::AtMost`] upper edge; the last bucket is unbounded
    /// (`[2^31, ∞)` µs), so a quantile landing there is
    /// [`Quantile::Saturated`] — rendering it as a finite `<=` would
    /// turn the histogram's one honest "slower than I can measure"
    /// signal into a fabricated bound.
    pub fn quantile(&self, q: f64) -> Option<Quantile> {
        let total: u64 = self.latency_us.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.latency_us.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if i == HIST_BUCKETS - 1 {
                    Quantile::Saturated(1u64 << (HIST_BUCKETS - 1))
                } else {
                    Quantile::AtMost(1u64 << (i + 1))
                });
            }
        }
        Some(Quantile::Saturated(1u64 << (HIST_BUCKETS - 1)))
    }

    /// Upper edge (µs) of the bucket containing quantile `q`, or
    /// `u64::MAX` when the quantile saturated the overflow bucket (see
    /// [`MetricsSnapshot::quantile`] — the overflow bucket has no upper
    /// edge to report). `None` with an empty histogram.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        self.quantile(q).map(Quantile::as_micros_upper)
    }

    /// Median latency bucket.
    pub fn p50(&self) -> Option<Quantile> {
        self.quantile(0.50)
    }

    /// 99th-percentile latency bucket.
    pub fn p99(&self) -> Option<Quantile> {
        self.quantile(0.99)
    }

    /// Median latency upper bound, µs (`u64::MAX` when saturated).
    pub fn p50_us(&self) -> Option<u64> {
        self.quantile_us(0.50)
    }

    /// 99th-percentile latency upper bound, µs (`u64::MAX` when
    /// saturated).
    pub fn p99_us(&self) -> Option<u64> {
        self.quantile_us(0.99)
    }

    /// Folds the shared-snapshot cache counters into this snapshot
    /// (the server calls this before encoding a `Stats` reply).
    pub fn merge_cache(&mut self, cache: &crate::cache::CacheStats) {
        self.cache_hits = cache.hits;
        self.cache_misses = cache.misses;
        self.cache_evicted = cache.evicted;
        self.cache_bytes = cache.bytes;
    }

    /// Renders the snapshot as an `explain()`-style table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve metrics: {} requests ({} errors), {} B in / {} B out\n",
            self.requests(),
            self.errors,
            self.bytes_in,
            self.bytes_out,
        ));
        out.push_str(&format!(
            "{:<12} {:>10}\n{:<12} {:>10}\n{:<12} {:>10}\n{:<12} {:>10}\n{:<12} {:>10}\n",
            "read",
            self.reads,
            "query",
            self.queries,
            "ingest",
            self.ingests,
            "refresh",
            self.refreshes,
            "stats",
            self.stats,
        ));
        out.push_str(&format!(
            "rejections: {} overloaded, {} deadline, {} malformed\n",
            self.rejected_overloaded, self.rejected_deadline, self.malformed,
        ));
        out.push_str(&format!(
            "snapshot cache: {} hits, {} misses, {} evicted, {} B cached\n",
            self.cache_hits, self.cache_misses, self.cache_evicted, self.cache_bytes,
        ));
        match (self.p50(), self.p99()) {
            (Some(p50), Some(p99)) => {
                out.push_str(&format!(
                    "latency: p50 {}, p99 {}\n",
                    p50.render(),
                    p99.render()
                ));
            }
            _ => out.push_str("latency: no samples\n"),
        }
        out
    }

    /// Appends the fixed-size wire encoding to `out`.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            self.reads,
            self.queries,
            self.ingests,
            self.refreshes,
            self.stats,
            self.errors,
            self.rejected_overloaded,
            self.rejected_deadline,
            self.malformed,
            self.bytes_in,
            self.bytes_out,
            self.cache_hits,
            self.cache_misses,
            self.cache_evicted,
            self.cache_bytes,
        ] {
            put_u64(out, v);
        }
        for b in self.latency_us {
            put_u64(out, b);
        }
    }

    /// Decodes the fixed-size wire encoding.
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> DecodeResult<MetricsSnapshot> {
        let mut s = MetricsSnapshot {
            reads: r.u64()?,
            queries: r.u64()?,
            ingests: r.u64()?,
            refreshes: r.u64()?,
            stats: r.u64()?,
            errors: r.u64()?,
            rejected_overloaded: r.u64()?,
            rejected_deadline: r.u64()?,
            malformed: r.u64()?,
            bytes_in: r.u64()?,
            bytes_out: r.u64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            cache_evicted: r.u64()?,
            cache_bytes: r.u64()?,
            latency_us: [0; HIST_BUCKETS],
        };
        for b in s.latency_us.iter_mut() {
            *b = r.u64()?;
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let m = ServeMetrics::new();
        // 99 fast requests (≈8 µs) and one slow outlier (≈1 s).
        for _ in 0..99 {
            m.record(OpClass::Read, 8);
        }
        m.record(OpClass::Query, 1_000_000);
        let s = m.snapshot();
        assert_eq!(s.reads, 99);
        assert_eq!(s.queries, 1);
        assert_eq!(s.requests(), 100);
        let p50 = s.p50_us().unwrap();
        let p99 = s.p99_us().unwrap();
        assert!(p50 <= 16, "p50 bound {p50} for 8 us samples");
        assert!(p99 <= 16, "99/100 samples are fast: {p99}");
        assert!(s.quantile_us(1.0).unwrap() > 1_000_000);
        assert_eq!(s.quantile(1.0), Some(Quantile::AtMost(1 << 20)));
        assert!(s.render().contains("p50"));
    }

    #[test]
    fn overflow_bucket_reports_saturated_not_a_fake_bound() {
        let m = ServeMetrics::new();
        // A request slower than the histogram can bound: 2^33 µs (~2.5
        // hours) lands in the last, unbounded bucket.
        m.record(OpClass::Query, 1u64 << 33);
        let s = m.snapshot();
        assert_eq!(s.latency_us[HIST_BUCKETS - 1], 1);
        let lower = 1u64 << (HIST_BUCKETS - 1);
        assert_eq!(s.p99(), Some(Quantile::Saturated(lower)));
        assert_eq!(s.p99_us(), Some(u64::MAX), "no finite bound exists");
        let text = s.render();
        assert!(
            text.contains(&format!(">= {lower} us")),
            "render must show a saturated marker, got: {text}"
        );
        assert!(
            !text.contains(&format!("<= {}", 1u64 << 32)),
            "the old fake 2^32 upper edge must be gone: {text}"
        );

        // Mixed load: fast median, saturated tail.
        for _ in 0..99 {
            m.record(OpClass::Read, 8);
        }
        let s = m.snapshot();
        assert_eq!(s.p50(), Some(Quantile::AtMost(16)));
        assert_eq!(s.p99(), Some(Quantile::AtMost(16)));
        assert_eq!(s.quantile(1.0), Some(Quantile::Saturated(lower)));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.p50_us(), None);
        assert!(s.render().contains("no samples"));
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let m = ServeMetrics::new();
        m.record(OpClass::Ingest, 0);
        let s = m.snapshot();
        assert_eq!(s.latency_us[0], 1);
    }

    #[test]
    fn snapshot_encoding_roundtrip() {
        let m = ServeMetrics::new();
        m.record(OpClass::Read, 5);
        m.record_error();
        m.record_overloaded();
        m.record_deadline();
        m.record_malformed();
        m.add_bytes_in(10);
        m.add_bytes_out(20);
        let s = m.snapshot();
        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        let back = MetricsSnapshot::decode_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
    }
}
