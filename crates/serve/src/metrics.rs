//! Serving-tier observability: lock-free counters and a latency
//! histogram, snapshotted into a wire-encodable [`MetricsSnapshot`] and
//! rendered `explain()`-style for humans.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::protocol::{put_u64, DecodeResult, Reader};

/// Number of power-of-two latency buckets: bucket `i` counts requests
/// with `latency_us` in `[2^i, 2^(i+1))` (bucket 0 also absorbs 0–1 µs).
pub const HIST_BUCKETS: usize = 32;

/// Lock-free serving-tier counters, updated by workers on every request.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    reads: AtomicU64,
    queries: AtomicU64,
    ingests: AtomicU64,
    refreshes: AtomicU64,
    stats: AtomicU64,
    errors: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_deadline: AtomicU64,
    malformed: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    latency_us: [AtomicU64; HIST_BUCKETS],
}

/// The request classes the per-class counters distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// `ReadTable`.
    Read,
    /// `Query`.
    Query,
    /// `Ingest`.
    Ingest,
    /// `Refresh`.
    Refresh,
    /// `Stats`.
    Stats,
}

impl ServeMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Records one completed request of class `op` with its latency.
    pub fn record(&self, op: OpClass, latency_us: u64) {
        match op {
            OpClass::Read => &self.reads,
            OpClass::Query => &self.queries,
            OpClass::Ingest => &self.ingests,
            OpClass::Refresh => &self.refreshes,
            OpClass::Stats => &self.stats,
        }
        .fetch_add(1, Ordering::Relaxed);
        let bucket = (64 - latency_us.max(1).leading_zeros() as usize - 1).min(HIST_BUCKETS - 1);
        self.latency_us[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request answered with a typed error.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an admission rejection (`Overloaded`).
    pub fn record_overloaded(&self) {
        self.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a deadline rejection.
    pub fn record_deadline(&self) {
        self.rejected_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a malformed frame.
    pub fn record_malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds received payload bytes.
    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds sent payload bytes.
    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut hist = [0u64; HIST_BUCKETS];
        for (dst, src) in hist.iter_mut().zip(&self.latency_us) {
            *dst = src.load(Ordering::Relaxed);
        }
        MetricsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            ingests: self.ingests.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            stats: self.stats.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            latency_us: hist,
        }
    }
}

/// A wire-encodable point-in-time copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Completed `ReadTable` requests.
    pub reads: u64,
    /// Completed `Query` requests.
    pub queries: u64,
    /// Completed `Ingest` requests.
    pub ingests: u64,
    /// Completed `Refresh` requests.
    pub refreshes: u64,
    /// Completed `Stats` requests.
    pub stats: u64,
    /// Requests answered with a typed error frame.
    pub errors: u64,
    /// Connections rejected by admission control.
    pub rejected_overloaded: u64,
    /// Requests rejected for exceeding their deadline.
    pub rejected_deadline: u64,
    /// Malformed frames answered with a typed error.
    pub malformed: u64,
    /// Request payload bytes received.
    pub bytes_in: u64,
    /// Response payload bytes sent.
    pub bytes_out: u64,
    /// Power-of-two latency buckets (µs), successful requests only.
    pub latency_us: [u64; HIST_BUCKETS],
}

impl MetricsSnapshot {
    /// Total completed requests across classes.
    pub fn requests(&self) -> u64 {
        self.reads + self.queries + self.ingests + self.refreshes + self.stats
    }

    /// Upper edge (µs) of the bucket containing quantile `q` in `[0,1]`,
    /// or `None` with an empty histogram. Bucketed, so an upper bound —
    /// exact enough for p50/p99 trend lines.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total: u64 = self.latency_us.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.latency_us.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        Some(u64::MAX)
    }

    /// Median latency upper bound, µs.
    pub fn p50_us(&self) -> Option<u64> {
        self.quantile_us(0.50)
    }

    /// 99th-percentile latency upper bound, µs.
    pub fn p99_us(&self) -> Option<u64> {
        self.quantile_us(0.99)
    }

    /// Renders the snapshot as an `explain()`-style table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve metrics: {} requests ({} errors), {} B in / {} B out\n",
            self.requests(),
            self.errors,
            self.bytes_in,
            self.bytes_out,
        ));
        out.push_str(&format!(
            "{:<12} {:>10}\n{:<12} {:>10}\n{:<12} {:>10}\n{:<12} {:>10}\n{:<12} {:>10}\n",
            "read",
            self.reads,
            "query",
            self.queries,
            "ingest",
            self.ingests,
            "refresh",
            self.refreshes,
            "stats",
            self.stats,
        ));
        out.push_str(&format!(
            "rejections: {} overloaded, {} deadline, {} malformed\n",
            self.rejected_overloaded, self.rejected_deadline, self.malformed,
        ));
        match (self.p50_us(), self.p99_us()) {
            (Some(p50), Some(p99)) => {
                out.push_str(&format!("latency: p50 <= {p50} us, p99 <= {p99} us\n"));
            }
            _ => out.push_str("latency: no samples\n"),
        }
        out
    }

    /// Appends the fixed-size wire encoding to `out`.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            self.reads,
            self.queries,
            self.ingests,
            self.refreshes,
            self.stats,
            self.errors,
            self.rejected_overloaded,
            self.rejected_deadline,
            self.malformed,
            self.bytes_in,
            self.bytes_out,
        ] {
            put_u64(out, v);
        }
        for b in self.latency_us {
            put_u64(out, b);
        }
    }

    /// Decodes the fixed-size wire encoding.
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> DecodeResult<MetricsSnapshot> {
        let mut s = MetricsSnapshot {
            reads: r.u64()?,
            queries: r.u64()?,
            ingests: r.u64()?,
            refreshes: r.u64()?,
            stats: r.u64()?,
            errors: r.u64()?,
            rejected_overloaded: r.u64()?,
            rejected_deadline: r.u64()?,
            malformed: r.u64()?,
            bytes_in: r.u64()?,
            bytes_out: r.u64()?,
            latency_us: [0; HIST_BUCKETS],
        };
        for b in s.latency_us.iter_mut() {
            *b = r.u64()?;
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let m = ServeMetrics::new();
        // 99 fast requests (≈8 µs) and one slow outlier (≈1 s).
        for _ in 0..99 {
            m.record(OpClass::Read, 8);
        }
        m.record(OpClass::Query, 1_000_000);
        let s = m.snapshot();
        assert_eq!(s.reads, 99);
        assert_eq!(s.queries, 1);
        assert_eq!(s.requests(), 100);
        let p50 = s.p50_us().unwrap();
        let p99 = s.p99_us().unwrap();
        assert!(p50 <= 16, "p50 bound {p50} for 8 us samples");
        assert!(p99 <= 16, "99/100 samples are fast: {p99}");
        assert!(s.quantile_us(1.0).unwrap() > 1_000_000);
        assert!(s.render().contains("p50"));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.p50_us(), None);
        assert!(s.render().contains("no samples"));
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let m = ServeMetrics::new();
        m.record(OpClass::Ingest, 0);
        let s = m.snapshot();
        assert_eq!(s.latency_us[0], 1);
    }

    #[test]
    fn snapshot_encoding_roundtrip() {
        let m = ServeMetrics::new();
        m.record(OpClass::Read, 5);
        m.record_error();
        m.record_overloaded();
        m.record_deadline();
        m.record_malformed();
        m.add_bytes_in(10);
        m.add_bytes_out(20);
        let s = m.snapshot();
        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        let back = MetricsSnapshot::decode_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
    }
}
