//! The length-prefixed binary wire protocol.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by the payload, whose first byte is an opcode. Table payloads
//! reuse the engine's SCTB columnar encoding
//! ([`sc_engine::storage::format`]) verbatim — a served table is the same
//! bytes the storage tier writes — and large tables are split into
//! [`CHUNK_SIZE`] chunks so one request never pins a huge contiguous
//! write, while *all* chunks of one response come from a single snapshot
//! pin (epoch consistency).
//!
//! Decoding is fully bounds-checked: no slice indexing, no length-driven
//! preallocation beyond the already-received payload, a recursion cap on
//! plan/expression trees. A malformed payload is a typed
//! [`WireError::malformed`] — never a panic.

use sc_engine::exec::TableDelta;
use sc_engine::exec::{AggFunc, SortKey};
use sc_engine::expr::{BinOp, Expr};
use sc_engine::plan::{AggExpr, JoinType, LogicalPlan};
use sc_engine::storage::format;
use sc_engine::{Table, Value};

use crate::error::{ErrorCode, WireError};

/// Frames larger than this are rejected before allocation: the length
/// prefix alone triggers a typed error (server) or
/// [`crate::ServeError::Protocol`] (client).
pub const MAX_FRAME: u32 = 64 << 20;

/// Table responses are split into chunks of at most this many bytes.
pub const CHUNK_SIZE: usize = 256 << 10;

/// Plan / expression trees deeper than this are rejected while decoding
/// (stack-overflow guard against adversarial nesting).
pub const MAX_DEPTH: u32 = 64;

/// Table and column names longer than this are rejected.
pub const MAX_NAME: usize = 4 << 10;

// Request opcodes.
pub(crate) const OP_READ_TABLE: u8 = 0x01;
pub(crate) const OP_QUERY: u8 = 0x02;
pub(crate) const OP_INGEST: u8 = 0x03;
pub(crate) const OP_REFRESH: u8 = 0x04;
pub(crate) const OP_STATS: u8 = 0x05;

// Response opcodes.
pub(crate) const OP_TABLE_HEADER: u8 = 0x81;
pub(crate) const OP_TABLE_CHUNK: u8 = 0x82;
pub(crate) const OP_INGESTED: u8 = 0x83;
pub(crate) const OP_REFRESHED: u8 = 0x84;
pub(crate) const OP_STATS_REPLY: u8 = 0x85;
pub(crate) const OP_ERROR: u8 = 0xEE;

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Read a stored table at the serving snapshot's epoch.
    ReadTable {
        /// Table name.
        table: String,
    },
    /// Execute an ad-hoc plan, all scans resolving at one epoch.
    Query {
        /// The plan.
        plan: LogicalPlan,
    },
    /// Append a delta to a base table's ingest log.
    Ingest {
        /// Target base table.
        table: String,
        /// The delta (batches preserved).
        delta: TableDelta,
    },
    /// Run one managed refresh.
    Refresh,
    /// Server + snapshot statistics.
    Stats,
}

/// The result of one managed refresh, as reported over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshSummary {
    /// Whether the run (re)profiled the workload.
    pub profiled: bool,
    /// Number of MV nodes the run covered.
    pub nodes: u32,
    /// End-to-end wall time, seconds.
    pub total_s: f64,
}

// ---------------------------------------------------------------------
// Bounds-checked reader / writer over frame payloads.
// ---------------------------------------------------------------------

/// Result alias for payload decoding.
pub(crate) type DecodeResult<T> = std::result::Result<T, WireError>;

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError::malformed("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i32(&mut self) -> DecodeResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed UTF-8 string, length capped at `cap`.
    pub(crate) fn string(&mut self, cap: usize) -> DecodeResult<String> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(WireError::malformed(format!(
                "string length {len} exceeds cap {cap}"
            )));
        }
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| WireError::malformed("string is not valid UTF-8"))
    }

    /// Remaining undecoded bytes.
    pub(crate) fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Fails unless the payload was fully consumed (trailing garbage is
    /// as malformed as a truncation).
    pub(crate) fn finish(&self) -> DecodeResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::malformed(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------
// Value / expression / plan codec.
// ---------------------------------------------------------------------

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int64(x) => {
            out.push(0);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Float64(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Utf8(s) => {
            out.push(2);
            put_string(out, s);
        }
        Value::Bool(b) => {
            out.push(3);
            out.push(*b as u8);
        }
        Value::Date(d) => {
            out.push(4);
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> DecodeResult<Value> {
    Ok(match r.u8()? {
        0 => Value::Int64(r.i64()?),
        1 => Value::Float64(r.f64()?),
        2 => Value::Utf8(r.string(MAX_FRAME as usize)?),
        3 => Value::Bool(match r.u8()? {
            0 => false,
            1 => true,
            b => return Err(WireError::malformed(format!("bool byte {b}"))),
        }),
        4 => Value::Date(r.i32()?),
        t => return Err(WireError::malformed(format!("value tag {t}"))),
    })
}

fn put_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Column(name) => {
            out.push(1);
            put_string(out, name);
        }
        Expr::Literal(v) => {
            out.push(2);
            put_value(out, v);
        }
        Expr::Binary { left, op, right } => {
            out.push(3);
            out.push(binop_tag(*op));
            put_expr(out, left);
            put_expr(out, right);
        }
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Eq => 4,
        BinOp::Ne => 5,
        BinOp::Lt => 6,
        BinOp::Le => 7,
        BinOp::Gt => 8,
        BinOp::Ge => 9,
        BinOp::And => 10,
        BinOp::Or => 11,
    }
}

fn read_binop(b: u8) -> DecodeResult<BinOp> {
    Ok(match b {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Eq,
        5 => BinOp::Ne,
        6 => BinOp::Lt,
        7 => BinOp::Le,
        8 => BinOp::Gt,
        9 => BinOp::Ge,
        10 => BinOp::And,
        11 => BinOp::Or,
        t => return Err(WireError::malformed(format!("binop tag {t}"))),
    })
}

fn read_expr(r: &mut Reader<'_>, depth: u32) -> DecodeResult<Expr> {
    if depth > MAX_DEPTH {
        return Err(WireError::malformed("expression tree too deep"));
    }
    Ok(match r.u8()? {
        1 => Expr::Column(r.string(MAX_NAME)?),
        2 => Expr::Literal(read_value(r)?),
        3 => {
            let op = read_binop(r.u8()?)?;
            let left = Box::new(read_expr(r, depth + 1)?);
            let right = Box::new(read_expr(r, depth + 1)?);
            Expr::Binary { left, op, right }
        }
        t => return Err(WireError::malformed(format!("expr tag {t}"))),
    })
}

fn put_sort_keys(out: &mut Vec<u8>, keys: &[SortKey]) {
    put_u32(out, keys.len() as u32);
    for k in keys {
        put_string(out, &k.column);
        out.push(k.descending as u8);
    }
}

fn read_sort_keys(r: &mut Reader<'_>) -> DecodeResult<Vec<SortKey>> {
    let n = r.u32()? as usize;
    let mut keys = Vec::new();
    for _ in 0..n {
        let column = r.string(MAX_NAME)?;
        let descending = r.u8()? != 0;
        keys.push(SortKey { column, descending });
    }
    Ok(keys)
}

/// Encodes a plan into `out` (recursive, pre-order).
pub(crate) fn put_plan(out: &mut Vec<u8>, plan: &LogicalPlan) {
    match plan {
        LogicalPlan::Scan { table } => {
            out.push(1);
            put_string(out, table);
        }
        LogicalPlan::Filter { input, predicate } => {
            out.push(2);
            put_expr(out, predicate);
            put_plan(out, input);
        }
        LogicalPlan::Project { input, exprs } => {
            out.push(3);
            put_u32(out, exprs.len() as u32);
            for (e, name) in exprs {
                put_expr(out, e);
                put_string(out, name);
            }
            put_plan(out, input);
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => {
            out.push(4);
            out.push(match join_type {
                JoinType::Inner => 0,
                JoinType::Left => 1,
            });
            put_u32(out, on.len() as u32);
            for (l, r) in on {
                put_string(out, l);
                put_string(out, r);
            }
            put_plan(out, left);
            put_plan(out, right);
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            out.push(5);
            put_u32(out, group_by.len() as u32);
            for g in group_by {
                put_string(out, g);
            }
            put_u32(out, aggs.len() as u32);
            for a in aggs {
                out.push(match a.func {
                    AggFunc::Count => 0,
                    AggFunc::Sum => 1,
                    AggFunc::Min => 2,
                    AggFunc::Max => 3,
                    AggFunc::Avg => 4,
                });
                put_string(out, &a.column);
                put_string(out, &a.alias);
            }
            put_plan(out, input);
        }
        LogicalPlan::Distinct { input } => {
            out.push(6);
            put_plan(out, input);
        }
        LogicalPlan::Sort { input, keys } => {
            out.push(7);
            put_sort_keys(out, keys);
            put_plan(out, input);
        }
        LogicalPlan::TopK { input, keys, n } => {
            out.push(8);
            put_sort_keys(out, keys);
            put_u64(out, *n as u64);
            put_plan(out, input);
        }
        LogicalPlan::Limit { input, n } => {
            out.push(9);
            put_u64(out, *n as u64);
            put_plan(out, input);
        }
        LogicalPlan::Union { left, right } => {
            out.push(10);
            put_plan(out, left);
            put_plan(out, right);
        }
    }
}

/// Decodes a plan (recursive, depth-capped).
pub(crate) fn read_plan(r: &mut Reader<'_>, depth: u32) -> DecodeResult<LogicalPlan> {
    if depth > MAX_DEPTH {
        return Err(WireError::malformed("plan tree too deep"));
    }
    Ok(match r.u8()? {
        1 => LogicalPlan::Scan {
            table: r.string(MAX_NAME)?,
        },
        2 => {
            let predicate = read_expr(r, 0)?;
            let input = Box::new(read_plan(r, depth + 1)?);
            LogicalPlan::Filter { input, predicate }
        }
        3 => {
            let n = r.u32()? as usize;
            let mut exprs = Vec::new();
            for _ in 0..n {
                let e = read_expr(r, 0)?;
                let name = r.string(MAX_NAME)?;
                exprs.push((e, name));
            }
            let input = Box::new(read_plan(r, depth + 1)?);
            LogicalPlan::Project { input, exprs }
        }
        4 => {
            let join_type = match r.u8()? {
                0 => JoinType::Inner,
                1 => JoinType::Left,
                t => return Err(WireError::malformed(format!("join type {t}"))),
            };
            let n = r.u32()? as usize;
            let mut on = Vec::new();
            for _ in 0..n {
                let l = r.string(MAX_NAME)?;
                let rk = r.string(MAX_NAME)?;
                on.push((l, rk));
            }
            let left = Box::new(read_plan(r, depth + 1)?);
            let right = Box::new(read_plan(r, depth + 1)?);
            LogicalPlan::Join {
                left,
                right,
                on,
                join_type,
            }
        }
        5 => {
            let ng = r.u32()? as usize;
            let mut group_by = Vec::new();
            for _ in 0..ng {
                group_by.push(r.string(MAX_NAME)?);
            }
            let na = r.u32()? as usize;
            let mut aggs = Vec::new();
            for _ in 0..na {
                let func = match r.u8()? {
                    0 => AggFunc::Count,
                    1 => AggFunc::Sum,
                    2 => AggFunc::Min,
                    3 => AggFunc::Max,
                    4 => AggFunc::Avg,
                    t => return Err(WireError::malformed(format!("agg func {t}"))),
                };
                let column = r.string(MAX_NAME)?;
                let alias = r.string(MAX_NAME)?;
                aggs.push(AggExpr {
                    func,
                    column,
                    alias,
                });
            }
            let input = Box::new(read_plan(r, depth + 1)?);
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            }
        }
        6 => LogicalPlan::Distinct {
            input: Box::new(read_plan(r, depth + 1)?),
        },
        7 => {
            let keys = read_sort_keys(r)?;
            let input = Box::new(read_plan(r, depth + 1)?);
            LogicalPlan::Sort { input, keys }
        }
        8 => {
            let keys = read_sort_keys(r)?;
            let n = r.u64()? as usize;
            let input = Box::new(read_plan(r, depth + 1)?);
            LogicalPlan::TopK { input, keys, n }
        }
        9 => {
            let n = r.u64()? as usize;
            let input = Box::new(read_plan(r, depth + 1)?);
            LogicalPlan::Limit { input, n }
        }
        10 => {
            let left = Box::new(read_plan(r, depth + 1)?);
            let right = Box::new(read_plan(r, depth + 1)?);
            LogicalPlan::Union { left, right }
        }
        t => return Err(WireError::malformed(format!("plan tag {t}"))),
    })
}

// ---------------------------------------------------------------------
// Request codec.
// ---------------------------------------------------------------------

/// Encodes a request into one frame payload (opcode + body).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::ReadTable { table } => {
            out.push(OP_READ_TABLE);
            put_string(&mut out, table);
        }
        Request::Query { plan } => {
            out.push(OP_QUERY);
            put_plan(&mut out, plan);
        }
        Request::Ingest { table, delta } => {
            out.push(OP_INGEST);
            put_string(&mut out, table);
            // The delta rides as the SCTB encoding of its marker-column
            // table form — the same bytes a spilled delta writes to disk.
            let encoded = delta
                .to_table()
                .expect("TableDelta::to_table is infallible for well-formed deltas");
            out.extend_from_slice(&format::encode(&encoded));
        }
        Request::Refresh => out.push(OP_REFRESH),
        Request::Stats => out.push(OP_STATS),
    }
    out
}

/// Decodes a request frame payload. Every failure is a typed
/// [`WireError`] with [`ErrorCode::Malformed`].
pub fn decode_request(payload: &[u8]) -> DecodeResult<Request> {
    let mut r = Reader::new(payload);
    let req = match r.u8()? {
        OP_READ_TABLE => Request::ReadTable {
            table: r.string(MAX_NAME)?,
        },
        OP_QUERY => Request::Query {
            plan: read_plan(&mut r, 0)?,
        },
        OP_INGEST => {
            let table = r.string(MAX_NAME)?;
            let raw = r.rest().to_vec();
            let decoded = format::decode(bytes::Bytes::from(raw))
                .map_err(|e| WireError::malformed(format!("delta table: {e}")))?;
            let delta = TableDelta::from_table(&decoded)
                .map_err(|e| WireError::malformed(format!("delta markers: {e}")))?;
            Request::Ingest { table, delta }
        }
        OP_REFRESH => Request::Refresh,
        OP_STATS => Request::Stats,
        op => return Err(WireError::malformed(format!("request opcode {op:#04x}"))),
    };
    r.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------
// Response payload builders (server side).
// ---------------------------------------------------------------------

/// Splits an SCTB table encoding into response frames: one header
/// (epoch + chunk count + total bytes) followed by the chunks in order.
pub(crate) fn table_response_frames(epoch: u64, sctb: &[u8]) -> Vec<Vec<u8>> {
    let chunks: Vec<&[u8]> = if sctb.is_empty() {
        Vec::new()
    } else {
        sctb.chunks(CHUNK_SIZE).collect()
    };
    let mut frames = Vec::with_capacity(chunks.len() + 1);
    let mut header = vec![OP_TABLE_HEADER];
    put_u64(&mut header, epoch);
    put_u32(&mut header, chunks.len() as u32);
    put_u64(&mut header, sctb.len() as u64);
    frames.push(header);
    for (i, c) in chunks.iter().enumerate() {
        let mut f = Vec::with_capacity(c.len() + 5);
        f.push(OP_TABLE_CHUNK);
        put_u32(&mut f, i as u32);
        f.extend_from_slice(c);
        frames.push(f);
    }
    frames
}

pub(crate) fn ingested_frame(rows: u64) -> Vec<u8> {
    let mut f = vec![OP_INGESTED];
    put_u64(&mut f, rows);
    f
}

pub(crate) fn refreshed_frame(s: &RefreshSummary) -> Vec<u8> {
    let mut f = vec![OP_REFRESHED];
    f.push(s.profiled as u8);
    put_u32(&mut f, s.nodes);
    f.extend_from_slice(&s.total_s.to_le_bytes());
    f
}

pub(crate) fn error_frame(err: &WireError) -> Vec<u8> {
    let mut f = vec![OP_ERROR];
    f.push(err.code as u8);
    put_string(&mut f, &err.kind);
    put_string(&mut f, &err.message);
    f
}

pub(crate) fn read_error_body(r: &mut Reader<'_>) -> DecodeResult<WireError> {
    let code =
        ErrorCode::from_u8(r.u8()?).ok_or_else(|| WireError::malformed("unknown error code"))?;
    let kind = r.string(MAX_NAME)?;
    let message = r.string(MAX_FRAME as usize)?;
    Ok(WireError {
        code,
        kind,
        message,
    })
}

/// Decodes a table from concatenated chunk bytes.
pub(crate) fn decode_table_bytes(sctb: Vec<u8>) -> DecodeResult<Table> {
    format::decode(bytes::Bytes::from(sctb))
        .map_err(|e| WireError::malformed(format!("table payload: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_engine::{DataType, TableBuilder};

    fn sample_plan() -> LogicalPlan {
        let agg = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(LogicalPlan::Filter {
                    input: Box::new(LogicalPlan::Scan {
                        table: "store_sales".into(),
                    }),
                    predicate: Expr::col("qty").ge(Expr::lit(2i64)).and(
                        Expr::col("price")
                            .mul(Expr::lit(1.1f64))
                            .lt(Expr::lit(900.0f64)),
                    ),
                }),
                right: Box::new(LogicalPlan::Scan {
                    table: "item".into(),
                }),
                on: vec![("item_sk".into(), "item_sk".into())],
                join_type: JoinType::Left,
            }),
            group_by: vec!["category".into()],
            aggs: vec![
                AggExpr::new(AggFunc::Sum, "price", "revenue"),
                AggExpr::new(AggFunc::Count, "price", "n"),
                AggExpr::new(AggFunc::Avg, "price", "avg_price"),
            ],
        };
        LogicalPlan::TopK {
            input: Box::new(LogicalPlan::Union {
                left: Box::new(LogicalPlan::Distinct {
                    input: Box::new(agg.clone()),
                }),
                right: Box::new(agg),
            }),
            keys: vec![SortKey::desc("revenue"), SortKey::asc("category")],
            n: 7,
        }
    }

    #[test]
    fn request_roundtrip_all_variants() {
        let mut t = TableBuilder::new()
            .column("k", DataType::Int64)
            .column("s", DataType::Utf8)
            .build();
        t.push_row(vec![Value::Int64(1), Value::Utf8("a".into())])
            .unwrap();
        let delta = TableDelta::insert_only(t);
        let cases = vec![
            Request::ReadTable {
                table: "rev_by_category".into(),
            },
            Request::Query {
                plan: sample_plan(),
            },
            Request::Ingest {
                table: "store_sales".into(),
                delta,
            },
            Request::Refresh,
            Request::Stats,
        ];
        for req in cases {
            let payload = encode_request(&req);
            let back = decode_request(&payload).expect("roundtrip");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn truncated_and_trailing_bytes_are_malformed() {
        let payload = encode_request(&Request::Query {
            plan: sample_plan(),
        });
        for cut in [0, 1, 2, payload.len() / 2, payload.len() - 1] {
            let err = decode_request(&payload[..cut]).unwrap_err();
            assert_eq!(err.code, ErrorCode::Malformed, "cut at {cut}");
        }
        let mut extended = payload.clone();
        extended.push(0);
        assert_eq!(
            decode_request(&extended).unwrap_err().code,
            ErrorCode::Malformed
        );
    }

    #[test]
    fn depth_bomb_is_rejected_not_overflowed() {
        // 10_000 nested Distinct tags: tag-6 bytes then an inner scan.
        let mut payload = vec![OP_QUERY];
        payload.extend(vec![6u8; 10_000]);
        payload.push(1);
        put_string(&mut payload, "t");
        let err = decode_request(&payload).unwrap_err();
        assert_eq!(err.code, ErrorCode::Malformed);
        assert!(err.message.contains("deep"));
    }

    #[test]
    fn huge_declared_string_does_not_allocate() {
        let mut payload = vec![OP_READ_TABLE];
        put_u32(&mut payload, u32::MAX);
        let err = decode_request(&payload).unwrap_err();
        assert_eq!(err.code, ErrorCode::Malformed);
    }

    #[test]
    fn table_frames_roundtrip_and_chunk() {
        let mut t = TableBuilder::new().column("x", DataType::Int64).build();
        for i in 0..100_000i64 {
            t.push_row(vec![Value::Int64(i)]).unwrap();
        }
        let sctb = format::encode(&t).to_vec();
        assert!(sctb.len() > CHUNK_SIZE, "test table must span chunks");
        let frames = table_response_frames(42, &sctb);
        assert!(frames.len() > 2);
        // Reassemble like the client does.
        let mut r = Reader::new(&frames[0][1..]);
        let epoch = r.u64().unwrap();
        let nchunks = r.u32().unwrap() as usize;
        let total = r.u64().unwrap() as usize;
        assert_eq!(epoch, 42);
        assert_eq!(nchunks, frames.len() - 1);
        assert_eq!(total, sctb.len());
        let mut bytes = Vec::new();
        for (i, f) in frames[1..].iter().enumerate() {
            assert_eq!(f[0], OP_TABLE_CHUNK);
            let mut r = Reader::new(&f[1..]);
            assert_eq!(r.u32().unwrap() as usize, i);
            bytes.extend_from_slice(r.rest());
        }
        assert_eq!(bytes, sctb);
        let back = decode_table_bytes(bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn error_frame_roundtrip() {
        let err = WireError {
            code: ErrorCode::Engine,
            kind: "unknown_table".into(),
            message: "unknown table 'zzz'".into(),
        };
        let frame = error_frame(&err);
        assert_eq!(frame[0], OP_ERROR);
        let mut r = Reader::new(&frame[1..]);
        assert_eq!(read_error_body(&mut r).unwrap(), err);
        r.finish().unwrap();
    }
}
