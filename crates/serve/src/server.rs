//! The thread-pooled TCP server.
//!
//! One accept thread admits connections into a **bounded** rendezvous
//! queue (`std::sync::mpsc::sync_channel`); a fixed pool of workers takes
//! connections off the queue and serves requests until the peer closes.
//! Admission control is load shedding, not queueing: when every worker is
//! busy and the backlog is full, the accept thread answers a typed
//! [`ErrorCode::Overloaded`] frame and closes — a client is never parked
//! in an unbounded queue.
//!
//! Every `ReadTable`/`Query`/`Stats` request executes against **one**
//! [`sc::ScSnapshot`] pin taken at dispatch and dropped when the response
//! is done, so a multi-frame table response is epoch-consistent by
//! construction, and graceful shutdown — which drains in-flight requests
//! and joins every worker — provably leaves no pins behind (epoch GC then
//! reclaims every retained file). Ingest and refresh go through the
//! session's existing paths, inheriting all engine invariants.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sc::{ScError, ScSession};
use sc_engine::storage::format;

use crate::error::{ErrorCode, WireError};
use crate::metrics::{MetricsSnapshot, OpClass, ServeMetrics};
use crate::protocol::{
    self, decode_request, error_frame, ingested_frame, refreshed_frame, table_response_frames,
    RefreshSummary, Request, MAX_FRAME, OP_STATS_REPLY,
};

/// How often a blocked worker read wakes up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server knobs. `Default` is tuned for tests and examples.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Admitted-but-unclaimed connection bound. `0` makes admission a
    /// pure rendezvous: a connection is admitted only if a worker is
    /// waiting for one right now.
    pub backlog: usize,
    /// Per-request deadline, measured from the moment the request frame
    /// is fully received to the moment its response starts writing.
    pub deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            backlog: 64,
            deadline: Duration::from_secs(30),
        }
    }
}

/// A running server. Dropping it performs a graceful shutdown.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds a loopback ephemeral port and starts serving `session`.
    pub fn start(session: Arc<ScSession>, config: ServeConfig) -> io::Result<Server> {
        Server::bind(session, ("127.0.0.1", 0), config)
    }

    /// Binds `addr` and starts serving `session`.
    pub fn bind(
        session: Arc<ScSession>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServeMetrics::new());
        let workers = config.workers.max(1);
        let (tx, rx) = sync_channel::<TcpStream>(config.backlog);
        let rx = Arc::new(Mutex::new(rx));

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let session = Arc::clone(&session);
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("sc-serve-worker-{i}"))
                    .spawn(move || worker_loop(rx, session, metrics, stop, config))?,
            );
        }

        let accept = {
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("sc-serve-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        match tx.try_send(stream) {
                            Ok(()) => {}
                            Err(TrySendError::Full(stream)) => {
                                // Load shedding: typed backpressure, not
                                // unbounded queueing.
                                metrics.record_overloaded();
                                metrics.record_error();
                                shed_connection(stream);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                    // Dropping `tx` unblocks every worker's `recv`.
                })?
        };

        Ok(Server {
            addr: local,
            stop,
            metrics,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound address (connect [`crate::Client`]s here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving-tier counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Graceful shutdown: stop admitting, drain in-flight requests, join
    /// every thread (dropping every snapshot pin), and return the final
    /// metrics. Queued-but-unclaimed connections are answered with a
    /// typed `ShuttingDown` error.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_and_join();
        self.metrics.snapshot()
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop; it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Writes one length-prefixed frame.
fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)
}

/// Sheds a connection the admission bound rejected: answer a typed
/// `Overloaded` frame, half-close, and drain the peer's pending bytes
/// before dropping. The drain matters: the client has usually already
/// written its request, and closing a socket with unread bytes in the
/// receive buffer sends a TCP RST, which discards the error frame out of
/// the client's buffer before it can read it — the client would see a
/// raw transport error instead of typed backpressure. Runs on a short
/// detached thread so the accept loop keeps shedding at full rate.
fn shed_connection(mut stream: TcpStream) {
    std::thread::spawn(move || {
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        if write_frame(
            &mut stream,
            &error_frame(&WireError {
                code: ErrorCode::Overloaded,
                kind: String::new(),
                message: "admission bound reached; retry later".into(),
            }),
        )
        .is_err()
        {
            return;
        }
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut scratch = [0u8; 512];
        let deadline = Instant::now() + Duration::from_secs(1);
        while Instant::now() < deadline {
            match stream.read(&mut scratch) {
                // EOF: the peer saw our FIN (and the frame) and closed.
                Ok(0) => break,
                Ok(_) => {}
                // Timeouts keep draining until the deadline — the peer
                // may still be mid-write; anything else is fatal anyway.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => break,
            }
        }
    });
}

enum FrameRead {
    /// A complete payload.
    Frame(Vec<u8>),
    /// Peer closed (cleanly at a frame boundary, or mid-frame — either
    /// way there is no one left to answer) or the transport failed.
    Closed,
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(u32),
    /// Shutdown began while waiting; `mid_frame` says whether the peer
    /// had started sending a request that will now never be served.
    Stopped { mid_frame: bool },
}

/// Reads one frame, waking every [`POLL_INTERVAL`] to check `stop`.
fn read_frame_polling(stream: &mut TcpStream, stop: &AtomicBool) -> FrameRead {
    let mut header = [0u8; 4];
    match read_exact_polling(stream, stop, &mut header, true) {
        ReadExact::Done => {}
        ReadExact::Closed => return FrameRead::Closed,
        ReadExact::Stopped { any_bytes } => {
            return FrameRead::Stopped {
                mid_frame: any_bytes,
            }
        }
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return FrameRead::TooLarge(len);
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_polling(stream, stop, &mut payload, false) {
        ReadExact::Done => FrameRead::Frame(payload),
        ReadExact::Closed => FrameRead::Closed,
        ReadExact::Stopped { .. } => FrameRead::Stopped { mid_frame: true },
    }
}

enum ReadExact {
    Done,
    Closed,
    Stopped { any_bytes: bool },
}

/// Fills `buf`, polling `stop` on every timeout. With `stop_at_boundary`
/// the read gives up on shutdown even before the first byte (used for
/// the header, so an idle connection closes promptly); mid-buffer it
/// always reports `Stopped` so the caller can answer `ShuttingDown`.
fn read_exact_polling(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    buf: &mut [u8],
    stop_at_boundary: bool,
) -> ReadExact {
    let mut got = 0;
    if buf.is_empty() {
        return ReadExact::Done;
    }
    loop {
        if stop.load(Ordering::SeqCst) && (got > 0 || stop_at_boundary) {
            return ReadExact::Stopped { any_bytes: got > 0 };
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => return ReadExact::Closed,
            Ok(n) => {
                got += n;
                if got == buf.len() {
                    return ReadExact::Done;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadExact::Closed,
        }
    }
}

fn worker_loop(
    rx: Arc<Mutex<Receiver<TcpStream>>>,
    session: Arc<ScSession>,
    metrics: Arc<ServeMetrics>,
    stop: Arc<AtomicBool>,
    config: ServeConfig,
) {
    loop {
        // Take the next admitted connection; holding the lock only for
        // the take keeps the other workers runnable.
        let conn = { rx.lock().expect("receiver lock").recv() };
        let Ok(mut stream) = conn else { break };
        if stop.load(Ordering::SeqCst) {
            metrics.record_error();
            let _ = write_frame(
                &mut stream,
                &error_frame(&WireError {
                    code: ErrorCode::ShuttingDown,
                    kind: String::new(),
                    message: "server is draining".into(),
                }),
            );
            continue;
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        serve_connection(&mut stream, &session, &metrics, &stop, &config);
    }
}

/// Serves one connection until the peer closes, the framing breaks, or
/// shutdown drains it.
fn serve_connection(
    stream: &mut TcpStream,
    session: &ScSession,
    metrics: &ServeMetrics,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    loop {
        let payload = match read_frame_polling(stream, stop) {
            FrameRead::Frame(p) => p,
            FrameRead::Closed => return,
            FrameRead::TooLarge(len) => {
                // The stream cannot be resynced past an oversized frame:
                // answer a typed error, then close.
                metrics.record_malformed();
                metrics.record_error();
                let _ = write_frame(
                    stream,
                    &error_frame(&WireError::malformed(format!(
                        "frame length {len} exceeds max {MAX_FRAME}"
                    ))),
                );
                return;
            }
            FrameRead::Stopped { mid_frame } => {
                if mid_frame {
                    metrics.record_error();
                    let _ = write_frame(
                        stream,
                        &error_frame(&WireError {
                            code: ErrorCode::ShuttingDown,
                            kind: String::new(),
                            message: "server is draining".into(),
                        }),
                    );
                }
                return;
            }
        };
        metrics.add_bytes_in(payload.len() as u64);
        let started = Instant::now();
        let deadline = started + config.deadline;

        // A panic inside decoding or the engine must never take the
        // worker down: convert it into a typed error and drop the
        // connection (its request state is unknowable). Decode errors
        // keep the connection: the framing stayed intact, so it is
        // still usable.
        let executed = catch_unwind(AssertUnwindSafe(|| {
            let req = decode_request(&payload)?;
            execute(session, metrics, req, deadline)
        }));
        let (op, frames) = match executed {
            Ok(Ok(ok)) => ok,
            Ok(Err(err)) => {
                match err.code {
                    ErrorCode::DeadlineExceeded => metrics.record_deadline(),
                    ErrorCode::Malformed => metrics.record_malformed(),
                    _ => {}
                }
                metrics.record_error();
                if write_frame(stream, &error_frame(&err)).is_err() {
                    return;
                }
                continue;
            }
            Err(_) => {
                metrics.record_error();
                let _ = write_frame(
                    stream,
                    &error_frame(&WireError {
                        code: ErrorCode::Engine,
                        kind: "panic".into(),
                        message: "internal error while serving the request".into(),
                    }),
                );
                return;
            }
        };
        for frame in &frames {
            metrics.add_bytes_out(frame.len() as u64);
            if write_frame(stream, frame).is_err() {
                return;
            }
        }
        metrics.record(op, started.elapsed().as_micros() as u64);
    }
}

fn engine_error(err: ScError) -> WireError {
    let kind = match &err {
        ScError::Engine(e) => e.kind().to_string(),
        ScError::Opt(_) => "opt".into(),
        ScError::Dag(_) => "dag".into(),
        ScError::DuplicateMv(_) => "duplicate_mv".into(),
        ScError::NameCollision { .. } => "name_collision".into(),
        ScError::MissingStorageDir => "missing_storage_dir".into(),
        ScError::Scenario(_) => "scenario".into(),
    };
    WireError {
        code: ErrorCode::Engine,
        kind,
        message: err.to_string(),
    }
}

fn check_deadline(deadline: Instant) -> Result<(), WireError> {
    if Instant::now() >= deadline {
        Err(WireError {
            code: ErrorCode::DeadlineExceeded,
            kind: String::new(),
            message: "request exceeded its deadline".into(),
        })
    } else {
        Ok(())
    }
}

/// Executes one request, returning the response frames. Reads pin one
/// snapshot for the whole response; the pin drops on return (before the
/// frames hit the socket the table bytes are already extracted, so the
/// response stays epoch-consistent regardless).
fn execute(
    session: &ScSession,
    metrics: &ServeMetrics,
    req: Request,
    deadline: Instant,
) -> Result<(OpClass, Vec<Vec<u8>>), WireError> {
    check_deadline(deadline)?;
    match req {
        Request::ReadTable { table } => {
            let snap = session.snapshot();
            let t = snap.read_table(&table).map_err(engine_error)?;
            check_deadline(deadline)?;
            let frames = table_response_frames(snap.epoch(), &format::encode(&t));
            Ok((OpClass::Read, frames))
        }
        Request::Query { plan } => {
            let snap = session.snapshot();
            let t = snap.query(&plan).map_err(engine_error)?;
            check_deadline(deadline)?;
            let frames = table_response_frames(snap.epoch(), &format::encode(&t));
            Ok((OpClass::Query, frames))
        }
        Request::Ingest { table, delta } => {
            let rows = (delta.insert_rows() + delta.delete_rows()) as u64;
            session.ingest_delta(&table, delta).map_err(engine_error)?;
            check_deadline(deadline)?;
            Ok((OpClass::Ingest, vec![ingested_frame(rows)]))
        }
        Request::Refresh => {
            let report = session.refresh().map_err(engine_error)?;
            check_deadline(deadline)?;
            let summary = RefreshSummary {
                profiled: report.profiled,
                nodes: report.nodes().len() as u32,
                total_s: report.total_s(),
            };
            Ok((OpClass::Refresh, vec![refreshed_frame(&summary)]))
        }
        Request::Stats => {
            let snap = session.snapshot();
            let tables = snap.tables().map_err(engine_error)?;
            check_deadline(deadline)?;
            let mut f = vec![OP_STATS_REPLY];
            protocol::put_u64(&mut f, snap.epoch());
            protocol::put_u32(&mut f, tables.len() as u32);
            for t in &tables {
                protocol::put_string(&mut f, t);
            }
            metrics.snapshot().encode_into(&mut f);
            Ok((OpClass::Stats, vec![f]))
        }
    }
}
