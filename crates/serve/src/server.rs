//! The thread-pooled, pipelined TCP server.
//!
//! One accept thread admits connections into a **bounded** rendezvous
//! queue (`std::sync::mpsc::sync_channel`); a fixed pool of workers takes
//! connections off the queue and serves requests until the peer closes.
//! Admission control is load shedding, not queueing: when every worker is
//! busy and the backlog is full, the accept thread answers a typed
//! [`ErrorCode::Overloaded`] frame and closes — a client is never parked
//! in an unbounded queue. The graceful-shed drain itself runs on a
//! **capped** pool of detached drainer threads ([`MAX_DRAINERS`]); past
//! the cap, rejected connections are closed immediately so a connection
//! flood can never become a thread flood.
//!
//! Within a connection, requests are **pipelined**: a per-connection
//! reader thread keeps pulling frames (up to
//! [`ServeConfig::pipeline_depth`] ahead) while the worker executes and
//! writes responses strictly in receipt order, so response ordering is
//! preserved by construction and a client may batch writes without
//! waiting for replies. The per-request deadline clock starts the moment
//! a frame is fully received — queue time counts against the deadline,
//! execution-slot luck does not.
//!
//! Every `ReadTable`/`Query`/`Stats` request executes against **one**
//! [`sc::ScSnapshot`] pin taken at dispatch and dropped when the response
//! is built, so a multi-frame table response is epoch-consistent by
//! construction, and graceful shutdown — which drains in-flight requests
//! and joins every thread — provably leaves no pins behind (epoch GC then
//! reclaims every retained file). The exception that proves the rule:
//! a [`SnapshotCache`] hit takes **no pin at all**. The cached frames
//! were built under a pin at their epoch and are immutable bytes in
//! memory; the lock-free [`DiskCatalog::current_epoch`] load that keys
//! the lookup is monotone, so a hit is indistinguishable from the same
//! request having executed moments earlier. Ingest and refresh go
//! through the session's existing paths, inheriting all engine
//! invariants.
//!
//! [`DiskCatalog::current_epoch`]: sc_engine::storage::DiskCatalog::current_epoch

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sc::{ScError, ScSession};
use sc_engine::plan::LogicalPlan;
use sc_engine::storage::format;

use crate::cache::{SharedFrames, SnapshotCache};
use crate::error::{ErrorCode, WireError};
use crate::metrics::{MetricsSnapshot, OpClass, ServeMetrics};
use crate::protocol::{
    self, decode_request, error_frame, ingested_frame, refreshed_frame, table_response_frames,
    RefreshSummary, Request, MAX_FRAME, OP_STATS_REPLY,
};

/// How often a blocked reader wakes up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Concurrent graceful-shed drainers. Beyond this, a rejected connection
/// is dropped immediately (the peer sees a reset instead of the typed
/// `Overloaded` frame) — under a genuine flood, a bounded thread count
/// beats a graceful goodbye.
pub const MAX_DRAINERS: usize = 8;

/// Server knobs. `Default` is tuned for tests and examples.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Admitted-but-unclaimed connection bound. `0` makes admission a
    /// pure rendezvous: a connection is admitted only if a worker is
    /// waiting for one right now.
    pub backlog: usize,
    /// Per-request deadline, measured from the moment the request frame
    /// is fully received to the moment its response starts writing.
    pub deadline: Duration,
    /// How many requests a connection's reader may receive ahead of the
    /// one currently executing. `0` disables read-ahead (rendezvous):
    /// the next frame is accepted only once the previous response is
    /// being written.
    pub pipeline_depth: usize,
    /// Byte budget for the shared-snapshot read cache ([`SnapshotCache`]);
    /// `0` disables caching entirely.
    pub cache_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            backlog: 64,
            deadline: Duration::from_secs(30),
            pipeline_depth: 8,
            cache_bytes: 32 << 20,
        }
    }
}

/// A running server. Dropping it performs a graceful shutdown.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    cache: Arc<SnapshotCache>,
    session: Arc<ScSession>,
    hooked: bool,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("cache", &self.cache)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds a loopback ephemeral port and starts serving `session`.
    pub fn start(session: Arc<ScSession>, config: ServeConfig) -> io::Result<Server> {
        Server::bind(session, ("127.0.0.1", 0), config)
    }

    /// Binds `addr` and starts serving `session`.
    ///
    /// When the read cache is enabled, this registers the storage tier's
    /// retention hook so cache eviction tracks epoch GC exactly; the
    /// catalog holds **one** hook, so run at most one cache-enabled
    /// server per session (extra readers can share it with
    /// `cache_bytes: 0`).
    pub fn bind(
        session: Arc<ScSession>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServeMetrics::new());
        let cache = Arc::new(SnapshotCache::new(config.cache_bytes));
        let hooked = cache.enabled();
        if hooked {
            // Evict in lockstep with retained-namespace reclamation: a
            // cached epoch never outlives its retained files by more
            // than the commit (or pin drop) that buried it.
            let cache = Arc::clone(&cache);
            session
                .disk()
                .set_retention_hook(move |horizon| cache.evict_below(horizon));
        }
        let workers = config.workers.max(1);
        let (tx, rx) = sync_channel::<TcpStream>(config.backlog);
        let rx = Arc::new(Mutex::new(rx));

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let session = Arc::clone(&session);
            let metrics = Arc::clone(&metrics);
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("sc-serve-worker-{i}"))
                    .spawn(move || worker_loop(rx, session, metrics, cache, stop, config))?,
            );
        }

        let accept = {
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            let drainers = Arc::new(AtomicUsize::new(0));
            std::thread::Builder::new()
                .name("sc-serve-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        match tx.try_send(stream) {
                            Ok(()) => {}
                            Err(TrySendError::Full(stream)) => {
                                // Load shedding: typed backpressure, not
                                // unbounded queueing.
                                metrics.record_overloaded();
                                metrics.record_error();
                                shed_connection(stream, &drainers);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                    // Dropping `tx` unblocks every worker's `recv`.
                })?
        };

        Ok(Server {
            addr: local,
            stop,
            metrics,
            cache,
            session,
            hooked,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound address (connect [`crate::Client`]s here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving-tier counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The shared-snapshot read cache (disabled when
    /// [`ServeConfig::cache_bytes`] is `0`).
    pub fn cache(&self) -> &SnapshotCache {
        &self.cache
    }

    /// Graceful shutdown: stop admitting, drain in-flight requests, join
    /// every thread (dropping every snapshot pin), and return the final
    /// metrics — cache counters included. Queued-but-unclaimed
    /// connections are answered with a typed `ShuttingDown` error.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_and_join();
        let mut snap = self.metrics.snapshot();
        snap.merge_cache(&self.cache.stats());
        snap
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop; it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if self.hooked {
            self.session.disk().clear_retention_hook();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Writes one length-prefixed frame.
fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)
}

/// Sheds a connection the admission bound rejected: answer a typed
/// `Overloaded` frame, half-close, and drain the peer's pending bytes
/// before dropping. The drain matters: the client has usually already
/// written its request, and closing a socket with unread bytes in the
/// receive buffer sends a TCP RST, which discards the error frame out of
/// the client's buffer before it can read it — the client would see a
/// raw transport error instead of typed backpressure.
///
/// The drain runs on a short detached thread so the accept loop keeps
/// shedding at full rate — but the number of live drainers is capped at
/// [`MAX_DRAINERS`]. At the cap the connection is simply dropped:
/// during a flood, each graceful drain can hold its thread for up to a
/// second, so an unbounded spawn-per-rejection would turn the flood into
/// a thread explosion exactly when the server is least able to afford
/// one.
fn shed_connection(mut stream: TcpStream, drainers: &Arc<AtomicUsize>) {
    let mut live = drainers.load(Ordering::Relaxed);
    loop {
        if live >= MAX_DRAINERS {
            // Fall through: immediate close, no thread.
            return;
        }
        match drainers.compare_exchange_weak(live, live + 1, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => break,
            Err(now) => live = now,
        }
    }
    let pool = Arc::clone(drainers);
    let spawned = std::thread::Builder::new()
        .name("sc-serve-drain".into())
        .spawn(move || {
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            if write_frame(
                &mut stream,
                &error_frame(&WireError {
                    code: ErrorCode::Overloaded,
                    kind: String::new(),
                    message: "admission bound reached; retry later".into(),
                }),
            )
            .is_ok()
            {
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                let mut scratch = [0u8; 512];
                let deadline = Instant::now() + Duration::from_secs(1);
                while Instant::now() < deadline {
                    match stream.read(&mut scratch) {
                        // EOF: the peer saw our FIN (and the frame) and
                        // closed.
                        Ok(0) => break,
                        Ok(_) => {}
                        // Timeouts keep draining until the deadline —
                        // the peer may still be mid-write; anything else
                        // is fatal anyway.
                        Err(e)
                            if matches!(
                                e.kind(),
                                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                            ) => {}
                        Err(_) => break,
                    }
                }
            }
            pool.fetch_sub(1, Ordering::AcqRel);
        });
    if spawned.is_err() {
        drainers.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Reasons a connection's reader gives up between frames.
struct Halt<'a> {
    /// Server-wide shutdown.
    stop: &'a AtomicBool,
    /// This connection's executor is gone (write failure or panic).
    done: &'a AtomicBool,
}

impl Halt<'_> {
    fn halted(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || self.done.load(Ordering::SeqCst)
    }
}

enum FrameRead {
    /// A complete payload.
    Frame(Vec<u8>),
    /// Peer closed (cleanly at a frame boundary, or mid-frame — either
    /// way there is no one left to answer) or the transport failed.
    Closed,
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(u32),
    /// Shutdown began while waiting; `mid_frame` says whether the peer
    /// had started sending a request that will now never be served.
    Stopped { mid_frame: bool },
}

/// Reads one frame, waking every [`POLL_INTERVAL`] to check `halt`.
fn read_frame_polling(stream: &mut TcpStream, halt: &Halt<'_>) -> FrameRead {
    let mut header = [0u8; 4];
    match read_exact_polling(stream, halt, &mut header, true) {
        ReadExact::Done => {}
        ReadExact::Closed => return FrameRead::Closed,
        ReadExact::Stopped { any_bytes } => {
            return FrameRead::Stopped {
                mid_frame: any_bytes,
            }
        }
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return FrameRead::TooLarge(len);
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_polling(stream, halt, &mut payload, false) {
        ReadExact::Done => FrameRead::Frame(payload),
        ReadExact::Closed => FrameRead::Closed,
        ReadExact::Stopped { .. } => FrameRead::Stopped { mid_frame: true },
    }
}

enum ReadExact {
    Done,
    Closed,
    Stopped { any_bytes: bool },
}

/// Fills `buf`, polling `halt` on every timeout. With `stop_at_boundary`
/// the read gives up on shutdown even before the first byte (used for
/// the header, so an idle connection closes promptly); mid-buffer it
/// always reports `Stopped` so the caller can answer `ShuttingDown`.
fn read_exact_polling(
    stream: &mut TcpStream,
    halt: &Halt<'_>,
    buf: &mut [u8],
    stop_at_boundary: bool,
) -> ReadExact {
    let mut got = 0;
    if buf.is_empty() {
        return ReadExact::Done;
    }
    loop {
        if halt.halted() && (got > 0 || stop_at_boundary) {
            return ReadExact::Stopped { any_bytes: got > 0 };
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => return ReadExact::Closed,
            Ok(n) => {
                got += n;
                if got == buf.len() {
                    return ReadExact::Done;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadExact::Closed,
        }
    }
}

fn worker_loop(
    rx: Arc<Mutex<Receiver<TcpStream>>>,
    session: Arc<ScSession>,
    metrics: Arc<ServeMetrics>,
    cache: Arc<SnapshotCache>,
    stop: Arc<AtomicBool>,
    config: ServeConfig,
) {
    loop {
        // Take the next admitted connection; holding the lock only for
        // the take keeps the other workers runnable.
        let conn = { rx.lock().expect("receiver lock").recv() };
        let Ok(mut stream) = conn else { break };
        if stop.load(Ordering::SeqCst) {
            metrics.record_error();
            let _ = write_frame(
                &mut stream,
                &error_frame(&WireError {
                    code: ErrorCode::ShuttingDown,
                    kind: String::new(),
                    message: "server is draining".into(),
                }),
            );
            continue;
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        serve_connection(&mut stream, &session, &metrics, &cache, &stop, &config);
    }
}

/// What the per-connection reader hands the executor. `Frame` carries
/// the receipt timestamp — the deadline clock starts here, not at
/// dequeue, so time spent queued behind a slow request counts against
/// the queued request's deadline.
enum Inbound {
    Frame { payload: Vec<u8>, received: Instant },
    Closed,
    TooLarge(u32),
    Stopped { mid_frame: bool },
}

/// Pulls frames off the socket and into the bounded pipeline queue.
/// Every non-`Frame` read is terminal, and so is a send failure (the
/// executor hung up). The bounded `send` is the pipelining backpressure:
/// at most `pipeline_depth` requests sit received-but-unexecuted.
fn reader_loop(mut stream: TcpStream, halt: &Halt<'_>, tx: SyncSender<Inbound>) {
    loop {
        let item = match read_frame_polling(&mut stream, halt) {
            FrameRead::Frame(payload) => Inbound::Frame {
                payload,
                received: Instant::now(),
            },
            FrameRead::Closed => Inbound::Closed,
            FrameRead::TooLarge(len) => Inbound::TooLarge(len),
            FrameRead::Stopped { mid_frame } => Inbound::Stopped { mid_frame },
        };
        let terminal = !matches!(item, Inbound::Frame { .. });
        if tx.send(item).is_err() || terminal {
            return;
        }
    }
}

/// Serves one connection until the peer closes, the framing breaks, or
/// shutdown drains it. Reads are pipelined (see [`reader_loop`]);
/// responses are written strictly in receipt order because this single
/// executor dequeues and writes serially — a deadline rejection
/// mid-pipeline emits its error frame in sequence and later responses
/// stay correctly ordered.
fn serve_connection(
    stream: &mut TcpStream,
    session: &ScSession,
    metrics: &ServeMetrics,
    cache: &SnapshotCache,
    stop: &Arc<AtomicBool>,
    config: &ServeConfig,
) {
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let done = Arc::new(AtomicBool::new(false));
    let (tx, rx) = sync_channel::<Inbound>(config.pipeline_depth);
    let reader = {
        let stop = Arc::clone(stop);
        let done = Arc::clone(&done);
        std::thread::Builder::new()
            .name("sc-serve-reader".into())
            .spawn(move || {
                reader_loop(
                    reader_stream,
                    &Halt {
                        stop: &stop,
                        done: &done,
                    },
                    tx,
                )
            })
    };
    let Ok(reader) = reader else {
        return;
    };

    while let Ok(item) = rx.recv() {
        let (payload, received) = match item {
            Inbound::Frame { payload, received } => (payload, received),
            Inbound::Closed => break,
            Inbound::TooLarge(len) => {
                // The stream cannot be resynced past an oversized frame:
                // answer a typed error, then close.
                metrics.record_malformed();
                metrics.record_error();
                let _ = write_frame(
                    stream,
                    &error_frame(&WireError::malformed(format!(
                        "frame length {len} exceeds max {MAX_FRAME}"
                    ))),
                );
                break;
            }
            Inbound::Stopped { mid_frame } => {
                if mid_frame {
                    metrics.record_error();
                    let _ = write_frame(
                        stream,
                        &error_frame(&WireError {
                            code: ErrorCode::ShuttingDown,
                            kind: String::new(),
                            message: "server is draining".into(),
                        }),
                    );
                }
                break;
            }
        };
        metrics.add_bytes_in(payload.len() as u64);
        let deadline = received + config.deadline;

        // A panic inside decoding or the engine must never take the
        // worker down: convert it into a typed error and drop the
        // connection (its request state is unknowable). Decode errors
        // keep the connection: the framing stayed intact, so it is
        // still usable.
        let executed = catch_unwind(AssertUnwindSafe(|| {
            let req = decode_request(&payload)?;
            execute(session, metrics, cache, req, deadline)
        }));
        match executed {
            Ok(Ok((op, frames))) => {
                let mut broken = false;
                for frame in frames.iter() {
                    metrics.add_bytes_out(frame.len() as u64);
                    if write_frame(stream, frame).is_err() {
                        broken = true;
                        break;
                    }
                }
                if broken {
                    break;
                }
                metrics.record(op, received.elapsed().as_micros() as u64);
            }
            Ok(Err(err)) => {
                match err.code {
                    ErrorCode::DeadlineExceeded => metrics.record_deadline(),
                    ErrorCode::Malformed => metrics.record_malformed(),
                    _ => {}
                }
                metrics.record_error();
                if write_frame(stream, &error_frame(&err)).is_err() {
                    break;
                }
            }
            Err(_) => {
                metrics.record_error();
                let _ = write_frame(
                    stream,
                    &error_frame(&WireError {
                        code: ErrorCode::Engine,
                        kind: "panic".into(),
                        message: "internal error while serving the request".into(),
                    }),
                );
                break;
            }
        }
    }
    // Tear the pipeline down: the reader observes `done` at its next
    // poll tick (or its pending `send` fails once `rx` drops) and exits.
    done.store(true, Ordering::SeqCst);
    drop(rx);
    let _ = reader.join();
}

fn engine_error(err: ScError) -> WireError {
    let kind = match &err {
        ScError::Engine(e) => e.kind().to_string(),
        ScError::Opt(_) => "opt".into(),
        ScError::Dag(_) => "dag".into(),
        ScError::DuplicateMv(_) => "duplicate_mv".into(),
        ScError::NameCollision { .. } => "name_collision".into(),
        ScError::MissingStorageDir => "missing_storage_dir".into(),
        ScError::Scenario(_) => "scenario".into(),
    };
    WireError {
        code: ErrorCode::Engine,
        kind,
        message: err.to_string(),
    }
}

fn check_deadline(deadline: Instant) -> Result<(), WireError> {
    if Instant::now() >= deadline {
        Err(WireError {
            code: ErrorCode::DeadlineExceeded,
            kind: String::new(),
            message: "request exceeded its deadline".into(),
        })
    } else {
        Ok(())
    }
}

/// Serves a whole-table read through the snapshot cache.
///
/// The hit path is the serving tier's fast path: one lock-free
/// `current_epoch` load plus a shared-lock map probe — no snapshot pin,
/// no io-lock crossing with a committing writer, no decode/encode. The
/// miss path is the pre-cache path verbatim (pin, read, encode, chunk),
/// then memoizes the frames **at the pin's epoch** — which may already
/// be newer than the `current_epoch` probed above; keying by what was
/// actually served keeps cached and uncached responses byte-identical
/// per epoch.
fn read_cached(
    session: &ScSession,
    cache: &SnapshotCache,
    table: &str,
    deadline: Instant,
) -> Result<SharedFrames, WireError> {
    if cache.enabled() {
        let epoch = session.disk().current_epoch();
        if let Some(frames) = cache.get(epoch, table) {
            return Ok(frames);
        }
    }
    let snap = session.snapshot();
    let t = snap.read_table(table).map_err(engine_error)?;
    check_deadline(deadline)?;
    let frames: SharedFrames = Arc::new(table_response_frames(snap.epoch(), &format::encode(&t)));
    cache.insert(snap.epoch(), table, Arc::clone(&frames));
    Ok(frames)
}

/// Executes one request, returning the response frames. Reads pin one
/// snapshot for the whole response (cache hits excepted — their frames
/// were built under a pin and are immutable); the pin drops on return,
/// before the frames hit the socket, which is safe because the table
/// bytes are already extracted.
fn execute(
    session: &ScSession,
    metrics: &ServeMetrics,
    cache: &SnapshotCache,
    req: Request,
    deadline: Instant,
) -> Result<(OpClass, SharedFrames), WireError> {
    check_deadline(deadline)?;
    match req {
        Request::ReadTable { table } => {
            let frames = read_cached(session, cache, &table, deadline)?;
            Ok((OpClass::Read, frames))
        }
        Request::Query { plan } => {
            // A bare scan is `ReadTable` in query clothing — same pinned
            // read, same bytes — so it shares the same cache key.
            if let LogicalPlan::Scan { table } = &plan {
                let frames = read_cached(session, cache, table, deadline)?;
                return Ok((OpClass::Query, frames));
            }
            let snap = session.snapshot();
            let t = snap.query(&plan).map_err(engine_error)?;
            check_deadline(deadline)?;
            let frames = table_response_frames(snap.epoch(), &format::encode(&t));
            Ok((OpClass::Query, Arc::new(frames)))
        }
        Request::Ingest { table, delta } => {
            let rows = (delta.insert_rows() + delta.delete_rows()) as u64;
            session.ingest_delta(&table, delta).map_err(engine_error)?;
            check_deadline(deadline)?;
            Ok((OpClass::Ingest, Arc::new(vec![ingested_frame(rows)])))
        }
        Request::Refresh => {
            let report = session.refresh().map_err(engine_error)?;
            check_deadline(deadline)?;
            let summary = RefreshSummary {
                profiled: report.profiled,
                nodes: report.nodes().len() as u32,
                total_s: report.total_s(),
            };
            Ok((OpClass::Refresh, Arc::new(vec![refreshed_frame(&summary)])))
        }
        Request::Stats => {
            let snap = session.snapshot();
            let tables = snap.tables().map_err(engine_error)?;
            check_deadline(deadline)?;
            let mut f = vec![OP_STATS_REPLY];
            protocol::put_u64(&mut f, snap.epoch());
            protocol::put_u32(&mut f, tables.len() as u32);
            for t in &tables {
                protocol::put_string(&mut f, t);
            }
            let mut m = metrics.snapshot();
            m.merge_cache(&cache.stats());
            m.encode_into(&mut f);
            Ok((OpClass::Stats, Arc::new(vec![f])))
        }
    }
}
