//! The shared-snapshot read cache.
//!
//! N concurrent readers of one hot MV should decode and encode its SCTB
//! bytes **once per epoch**, not once per request. The MVCC tier makes
//! that memoization safe by construction: state pinned at an epoch is
//! immutable, so a response body keyed by `(epoch, table)` can never go
//! stale — it can only become *unreachable* once the epoch falls behind
//! every live pin and the committed epoch. [`SnapshotCache`] stores the
//! fully built response frames (header + SCTB chunks, exactly what
//! [`crate::protocol::table_response_frames`] produces), so a hit skips
//! the pin, the segment reads, the decode, the re-encode, and the
//! chunking — it writes the memoized frames straight to the socket.
//!
//! Two eviction forces keep it bounded:
//!
//! * **Epoch eviction** — [`SnapshotCache::evict_below`] drops every
//!   entry below the retention horizon the storage tier reports via
//!   [`sc_engine::storage::DiskCatalog::set_retention_hook`]. The cache
//!   therefore reclaims entries in lockstep with the retained
//!   namespace: an entry never outlives its epoch's retained files by
//!   more than the commit that buried it.
//! * **LRU under a byte budget** — inserts that would exceed
//!   [`SnapshotCache::budget`] evict least-recently-hit entries first.
//!   A single body larger than the whole budget is served uncached.
//!
//! The hit path is read-mostly: a shared (read) lock on the map plus
//! atomic counter updates — concurrent hits never serialize against
//! each other, and never touch the storage tier's io lock at all (which
//! is exactly why cached hot reads stay flat while a refresher's commit
//! holds that lock exclusively).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Response frames shared between the cache and in-flight writers.
pub type SharedFrames = Arc<Vec<Vec<u8>>>;

/// Point-in-time cache counters (all monotonic except `bytes` and
/// `entries`, which are gauges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that took the full pinned read path.
    pub misses: u64,
    /// Entries evicted (epoch horizon + LRU combined).
    pub evicted: u64,
    /// Bytes currently cached (sum of cached frame payloads).
    pub bytes: u64,
    /// Entries currently cached.
    pub entries: u64,
}

struct Entry {
    frames: SharedFrames,
    bytes: u64,
    /// Logical LRU timestamp, bumped on every hit (atomic so the hit
    /// path stays on the shared lock).
    last_used: AtomicU64,
}

/// A bounded, byte-budgeted map from `(epoch, table)` to the fully
/// encoded table-response frames. See the module docs for the
/// invariants; a budget of `0` disables caching entirely (every lookup
/// is a non-counting miss and inserts are dropped).
#[derive(Default)]
pub struct SnapshotCache {
    budget: u64,
    map: RwLock<HashMap<(u64, String), Entry>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
    bytes: AtomicU64,
}

impl std::fmt::Debug for SnapshotCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SnapshotCache")
            .field("budget", &self.budget)
            .field("stats", &s)
            .finish()
    }
}

impl SnapshotCache {
    /// A cache bounded to `budget` bytes of frame payloads (0 disables).
    pub fn new(budget: u64) -> SnapshotCache {
        SnapshotCache {
            budget,
            ..SnapshotCache::default()
        }
    }

    /// Whether caching is enabled at all.
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Looks up the memoized response for `table` at `epoch`, counting
    /// a hit or a miss. Hits only take the shared half of the map lock.
    pub fn get(&self, epoch: u64, table: &str) -> Option<SharedFrames> {
        if !self.enabled() {
            return None;
        }
        let map = self.map.read();
        // Tuple keys can't be probed with a borrowed &str half; the
        // short-lived String is noise next to the decode+encode a hit
        // saves.
        match map.get(&(epoch, table.to_string())) {
            Some(entry) => {
                entry.last_used.store(
                    self.tick.fetch_add(1, Ordering::Relaxed) + 1,
                    Ordering::Relaxed,
                );
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.frames))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes `frames` for `(epoch, table)`, evicting
    /// least-recently-hit entries until the byte budget holds. A body
    /// larger than the whole budget is not cached. If another worker
    /// populated the key first, the existing entry wins (the bodies are
    /// byte-identical by the epoch-consistency contract, so which copy
    /// survives is immaterial).
    pub fn insert(&self, epoch: u64, table: &str, frames: SharedFrames) {
        let bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();
        if !self.enabled() || bytes > self.budget {
            return;
        }
        let mut map = self.map.write();
        if map.contains_key(&(epoch, table.to_string())) {
            return;
        }
        while self.bytes.load(Ordering::Relaxed) + bytes > self.budget {
            let Some(victim) = map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = map.remove(&victim) {
                self.bytes.fetch_sub(e.bytes, Ordering::Relaxed);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        map.insert(
            (epoch, table.to_string()),
            Entry {
                frames,
                bytes,
                last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed) + 1),
            },
        );
    }

    /// Drops every entry whose epoch is below `horizon` — the retention
    /// callback target. Called by the storage tier's epoch GC (under
    /// its io lock), so it must stay cheap: one write-lock sweep.
    pub fn evict_below(&self, horizon: u64) {
        if !self.enabled() {
            return;
        }
        let mut map = self.map.write();
        let before = map.len();
        map.retain(|(epoch, _), e| {
            if *epoch >= horizon {
                return true;
            }
            self.bytes.fetch_sub(e.bytes, Ordering::Relaxed);
            false
        });
        let dropped = (before - map.len()) as u64;
        if dropped > 0 {
            self.evicted.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            entries: self.map.read().len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(bytes: usize) -> SharedFrames {
        Arc::new(vec![vec![0xAB; bytes]])
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = SnapshotCache::new(1 << 20);
        assert!(c.get(1, "t").is_none());
        c.insert(1, "t", frames(100));
        let got = c.get(1, "t").expect("hit");
        assert_eq!(got[0].len(), 100);
        // Different epoch or table: miss.
        assert!(c.get(2, "t").is_none());
        assert!(c.get(1, "u").is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.bytes, 100);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let c = SnapshotCache::new(250);
        c.insert(1, "a", frames(100));
        c.insert(1, "b", frames(100));
        // Touch `a` so `b` is the LRU victim.
        assert!(c.get(1, "a").is_some());
        c.insert(1, "c", frames(100));
        assert!(c.get(1, "a").is_some(), "recently used entry survives");
        assert!(c.get(1, "b").is_none(), "LRU entry evicted");
        assert!(c.get(1, "c").is_some());
        let s = c.stats();
        assert_eq!(s.evicted, 1);
        assert_eq!(s.bytes, 200);
        assert!(s.bytes <= c.budget());
    }

    #[test]
    fn oversized_bodies_are_served_uncached() {
        let c = SnapshotCache::new(100);
        c.insert(1, "big", frames(101));
        assert!(c.get(1, "big").is_none());
        assert_eq!(c.stats().bytes, 0);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn epoch_horizon_eviction_is_exact() {
        let c = SnapshotCache::new(1 << 20);
        c.insert(1, "t", frames(10));
        c.insert(2, "t", frames(20));
        c.insert(3, "t", frames(30));
        c.evict_below(3);
        assert!(c.get(1, "t").is_none());
        assert!(c.get(2, "t").is_none());
        assert!(c.get(3, "t").is_some(), "horizon epoch itself survives");
        let s = c.stats();
        assert_eq!(s.evicted, 2);
        assert_eq!(s.bytes, 30);
    }

    #[test]
    fn first_insert_wins_on_a_populate_race() {
        let c = SnapshotCache::new(1 << 20);
        let first = frames(10);
        c.insert(1, "t", Arc::clone(&first));
        c.insert(1, "t", frames(10));
        let got = c.get(1, "t").unwrap();
        assert!(Arc::ptr_eq(&got, &first));
        assert_eq!(c.stats().bytes, 10, "double insert must not double-count");
    }

    #[test]
    fn zero_budget_disables_everything() {
        let c = SnapshotCache::new(0);
        assert!(!c.enabled());
        c.insert(1, "t", frames(10));
        assert!(c.get(1, "t").is_none());
        c.evict_below(10);
        let s = c.stats();
        assert_eq!(
            (s.hits, s.misses, s.evicted, s.bytes, s.entries),
            (0, 0, 0, 0, 0)
        );
    }
}
