//! The serve tier's error type and its wire representation.
//!
//! Every failure a client can observe is **typed**: the server answers a
//! malformed or rejected request with an error frame carrying a stable
//! [`ErrorCode`] (plus, for engine failures, the
//! [`sc_engine::EngineError::kind`] tag), never by panicking a worker or
//! silently dropping the connection mid-response.

use std::fmt;
use std::io;

/// Stable one-byte error class carried by an error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request frame could not be decoded (bad opcode, truncated
    /// body, oversized length prefix, invalid UTF-8…).
    Malformed = 1,
    /// Admission control rejected the connection: the worker pool and
    /// its bounded backlog are full. Back off and retry.
    Overloaded = 2,
    /// The request exceeded its per-request deadline before a response
    /// could be committed.
    DeadlineExceeded = 3,
    /// The server is draining for shutdown and no longer accepts work.
    ShuttingDown = 4,
    /// The session/engine failed the request; `kind` carries
    /// [`sc_engine::EngineError::kind`] (or a façade tag) for matching
    /// without parsing the message.
    Engine = 5,
}

impl ErrorCode {
    /// Decodes the wire byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::Overloaded),
            3 => Some(ErrorCode::DeadlineExceeded),
            4 => Some(ErrorCode::ShuttingDown),
            5 => Some(ErrorCode::Engine),
            _ => None,
        }
    }
}

/// A typed error response as it travels on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Error class.
    pub code: ErrorCode,
    /// Machine-readable subtag (an [`sc_engine::EngineError::kind`] for
    /// [`ErrorCode::Engine`], empty or a short slug otherwise).
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

impl WireError {
    /// A malformed-frame error with the given description.
    pub fn malformed(msg: impl Into<String>) -> WireError {
        WireError {
            code: ErrorCode::Malformed,
            kind: String::new(),
            message: msg.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind.is_empty() {
            write!(f, "{:?}: {}", self.code, self.message)
        } else {
            write!(f, "{:?}({}): {}", self.code, self.kind, self.message)
        }
    }
}

/// Client-side error: either the transport failed, the peer answered
/// something unintelligible, or the server answered a typed error.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (includes mid-frame disconnects).
    Io(io::Error),
    /// The peer's bytes did not decode as a protocol frame.
    Protocol(String),
    /// The server answered a typed error frame.
    Remote(WireError),
}

impl ServeError {
    /// The remote error, if this is [`ServeError::Remote`].
    pub fn remote(&self) -> Option<&WireError> {
        match self {
            ServeError::Remote(w) => Some(w),
            _ => None,
        }
    }

    /// Whether the server rejected the connection with
    /// [`ErrorCode::Overloaded`].
    pub fn is_overloaded(&self) -> bool {
        matches!(self.remote(), Some(w) if w.code == ErrorCode::Overloaded)
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol: {m}"),
            ServeError::Remote(w) => write!(f, "server: {w}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Convenience alias for client-side results.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_code_roundtrip() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::ShuttingDown,
            ErrorCode::Engine,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(200), None);
    }

    #[test]
    fn display_carries_kind_and_code() {
        let w = WireError {
            code: ErrorCode::Engine,
            kind: "unknown_table".into(),
            message: "unknown table 'x'".into(),
        };
        let text = ServeError::Remote(w).to_string();
        assert!(text.contains("unknown_table"));
        assert!(text.contains("Engine"));
        assert!(ServeError::Protocol("bad".into())
            .to_string()
            .contains("bad"));
    }
}
