//! A blocking client for the serve protocol, used by tests, benches,
//! and `examples/serve.rs`. One [`Client`] wraps one TCP connection and
//! issues requests synchronously; responses are decoded with the same
//! bounds-checked readers the server uses, so a hostile or broken peer
//! yields a typed [`ServeError`], never a panic.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sc_engine::exec::TableDelta;
use sc_engine::plan::LogicalPlan;
use sc_engine::storage::format;
use sc_engine::Table;

use crate::error::{Result, ServeError};
use crate::metrics::MetricsSnapshot;
use crate::protocol::{
    self, decode_table_bytes, encode_request, read_error_body, Reader, RefreshSummary, Request,
    MAX_FRAME, MAX_NAME, OP_ERROR, OP_INGEST, OP_INGESTED, OP_REFRESHED, OP_STATS_REPLY,
    OP_TABLE_CHUNK, OP_TABLE_HEADER,
};

/// Server + snapshot statistics, as returned by [`Client::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReport {
    /// The manifest epoch of the snapshot the stats were taken on.
    pub epoch: u64,
    /// Tables visible at that epoch, sorted.
    pub tables: Vec<String>,
    /// Serving-tier counters at response time.
    pub metrics: MetricsSnapshot,
}

impl StatsReport {
    /// Renders epoch, table list, and metrics as text.
    pub fn render(&self) -> String {
        format!(
            "epoch {} serving {} tables: {}\n{}",
            self.epoch,
            self.tables.len(),
            self.tables.join(", "),
            self.metrics.render()
        )
    }
}

/// A blocking connection to an [`crate::Server`].
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Caps how long any single response read may block (unset by
    /// default: reads wait indefinitely).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn send(&mut self, payload: &[u8]) -> Result<()> {
        self.stream
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.stream.write_all(payload)?;
        Ok(())
    }

    /// Sends a request **without** waiting for its response — the write
    /// half of the pipelined API. The server reads ahead up to its
    /// configured pipeline depth and answers strictly in send order, so
    /// after `k` sends the matching receives are `k` calls to the
    /// appropriate `recv_*` method, in the same order.
    pub fn send_request(&mut self, req: &Request) -> Result<()> {
        self.send(&encode_request(req))
    }

    /// Receives one pipelined table response (for a `ReadTable` or
    /// `Query` sent earlier). Returns the snapshot epoch and raw SCTB
    /// bytes; a typed server rejection (deadline, engine error) surfaces
    /// as [`ServeError::Remote`] without desynchronizing the stream.
    pub fn recv_table_raw(&mut self) -> Result<(u64, Vec<u8>)> {
        self.read_table_response()
    }

    /// Receives one pipelined refresh summary (for a `Refresh` sent
    /// earlier).
    pub fn recv_refresh(&mut self) -> Result<RefreshSummary> {
        let (op, body) = self.read_response()?;
        if op != OP_REFRESHED {
            return Err(ServeError::Protocol(format!(
                "expected refresh summary, got opcode {op:#04x}"
            )));
        }
        let mut r = Reader::new(&body);
        let proto = |e: crate::error::WireError| ServeError::Protocol(e.message);
        let profiled = r.u8().map_err(proto)? != 0;
        let nodes = r.u32().map_err(proto)?;
        let total_s = r.f64().map_err(proto)?;
        r.finish().map_err(proto)?;
        Ok(RefreshSummary {
            profiled,
            nodes,
            total_s,
        })
    }

    fn read_frame(&mut self) -> Result<Vec<u8>> {
        let mut header = [0u8; 4];
        self.stream.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header);
        if len > MAX_FRAME {
            return Err(ServeError::Protocol(format!(
                "response frame length {len} exceeds max {MAX_FRAME}"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.stream.read_exact(&mut payload)?;
        Ok(payload)
    }

    /// Reads one response frame, converting an error frame into
    /// [`ServeError::Remote`]. Returns `(opcode, body)`.
    fn read_response(&mut self) -> Result<(u8, Vec<u8>)> {
        let frame = self.read_frame()?;
        let Some((&op, body)) = frame.split_first() else {
            return Err(ServeError::Protocol("empty response frame".into()));
        };
        if op == OP_ERROR {
            let mut r = Reader::new(body);
            let err = read_error_body(&mut r)
                .map_err(|e| ServeError::Protocol(format!("bad error frame: {}", e.message)))?;
            return Err(ServeError::Remote(err));
        }
        Ok((op, body.to_vec()))
    }

    /// Reads a table response (header + chunks) into raw SCTB bytes.
    /// The bytes are exactly what the storage tier would write — two
    /// responses from the same epoch are byte-identical.
    fn read_table_response(&mut self) -> Result<(u64, Vec<u8>)> {
        let (op, body) = self.read_response()?;
        if op != OP_TABLE_HEADER {
            return Err(ServeError::Protocol(format!(
                "expected table header, got opcode {op:#04x}"
            )));
        }
        let mut r = Reader::new(&body);
        let proto = |e: crate::error::WireError| ServeError::Protocol(e.message);
        let epoch = r.u64().map_err(proto)?;
        let nchunks = r.u32().map_err(proto)?;
        let total = r.u64().map_err(proto)?;
        r.finish().map_err(proto)?;
        let mut bytes = Vec::new();
        for expect in 0..nchunks {
            let (op, chunk) = self.read_response()?;
            if op != OP_TABLE_CHUNK {
                return Err(ServeError::Protocol(format!(
                    "expected table chunk, got opcode {op:#04x}"
                )));
            }
            let mut r = Reader::new(&chunk);
            let index = r.u32().map_err(proto)?;
            if index != expect {
                return Err(ServeError::Protocol(format!(
                    "chunk {index} arrived out of order (expected {expect})"
                )));
            }
            bytes.extend_from_slice(r.rest());
        }
        if bytes.len() as u64 != total {
            return Err(ServeError::Protocol(format!(
                "table body was {} bytes, header declared {total}",
                bytes.len()
            )));
        }
        Ok((epoch, bytes))
    }

    /// Reads `table` at the server's current snapshot. Returns the
    /// snapshot epoch and the decoded table.
    pub fn read_table(&mut self, table: &str) -> Result<(u64, Table)> {
        let (epoch, bytes) = self.read_table_raw(table)?;
        let t = decode_table_bytes(bytes).map_err(|e| ServeError::Protocol(e.message))?;
        Ok((epoch, t))
    }

    /// Like [`Client::read_table`] but returns the raw SCTB bytes —
    /// the right form for byte-identity assertions.
    pub fn read_table_raw(&mut self, table: &str) -> Result<(u64, Vec<u8>)> {
        self.send(&encode_request(&Request::ReadTable {
            table: table.into(),
        }))?;
        self.read_table_response()
    }

    /// Executes `plan` on one server-side snapshot. Returns the epoch
    /// every scan resolved at and the result.
    pub fn query(&mut self, plan: &LogicalPlan) -> Result<(u64, Table)> {
        self.send(&encode_request(&Request::Query { plan: plan.clone() }))?;
        let (epoch, bytes) = self.read_table_response()?;
        let t = decode_table_bytes(bytes).map_err(|e| ServeError::Protocol(e.message))?;
        Ok((epoch, t))
    }

    /// Appends `delta` to `table`'s ingest log. Returns the number of
    /// changed rows the server acknowledged.
    pub fn ingest(&mut self, table: &str, delta: &TableDelta) -> Result<u64> {
        let encoded = delta
            .to_table()
            .map_err(|e| ServeError::Protocol(format!("delta not wire-encodable: {e}")))?;
        let mut payload = vec![OP_INGEST];
        protocol::put_string(&mut payload, table);
        payload.extend_from_slice(&format::encode(&encoded));
        self.send(&payload)?;
        let (op, body) = self.read_response()?;
        if op != OP_INGESTED {
            return Err(ServeError::Protocol(format!(
                "expected ingest ack, got opcode {op:#04x}"
            )));
        }
        let mut r = Reader::new(&body);
        let rows = r.u64().map_err(|e| ServeError::Protocol(e.message))?;
        r.finish().map_err(|e| ServeError::Protocol(e.message))?;
        Ok(rows)
    }

    /// Runs one managed refresh on the server.
    pub fn refresh(&mut self) -> Result<RefreshSummary> {
        self.send(&encode_request(&Request::Refresh))?;
        self.recv_refresh()
    }

    /// Fetches server + snapshot statistics.
    pub fn stats(&mut self) -> Result<StatsReport> {
        self.send(&encode_request(&Request::Stats))?;
        let (op, body) = self.read_response()?;
        if op != OP_STATS_REPLY {
            return Err(ServeError::Protocol(format!(
                "expected stats, got opcode {op:#04x}"
            )));
        }
        let mut r = Reader::new(&body);
        let proto = |e: crate::error::WireError| ServeError::Protocol(e.message);
        let epoch = r.u64().map_err(proto)?;
        let n = r.u32().map_err(proto)? as usize;
        let mut tables = Vec::new();
        for _ in 0..n {
            tables.push(r.string(MAX_NAME).map_err(proto)?);
        }
        let metrics = MetricsSnapshot::decode_from(&mut r).map_err(proto)?;
        r.finish().map_err(proto)?;
        Ok(StatsReport {
            epoch,
            tables,
            metrics,
        })
    }
}
