//! # sc-serve — a concurrent query-serving front end for S/C
//!
//! PR 8 gave the engine an MVCC snapshot tier: epoch-pinned, lock-free
//! reads ([`sc::ScSession::snapshot`]) that stay byte-identical while
//! refresh / ingest / compaction commit underneath. This crate is the
//! subsystem that *serves* it: a thread-pooled `std::net` TCP server
//! (no async runtime) exposing an `Arc<ScSession>` over a small
//! length-prefixed binary protocol whose table payloads reuse the SCTB
//! columnar encoding from [`sc_engine::storage::format`] verbatim.
//!
//! Request types: `ReadTable`, `Query(LogicalPlan)`,
//! `Ingest(TableDelta)`, `Refresh`, `Stats`. Every read executes on one
//! snapshot pin, so a multi-frame response is epoch-consistent; ingest
//! and refresh funnel through the session's existing paths, so all
//! engine invariants (delta-log cursors, refresh-run locking, epoch GC)
//! hold untouched.
//!
//! Production edges, not just the happy path:
//!
//! * **Bounded admission** — a fixed worker pool plus a bounded backlog;
//!   beyond that, connections get a typed [`ErrorCode::Overloaded`]
//!   frame, never an unbounded queue.
//! * **Per-request deadlines** — [`ServeConfig::deadline`], answered
//!   with [`ErrorCode::DeadlineExceeded`].
//! * **Malformed-frame safety** — decoding is fully bounds-checked and
//!   depth-capped; a garbage frame yields a typed error (or a clean
//!   close), never a worker panic.
//! * **Graceful shutdown** — [`Server::shutdown`] drains in-flight
//!   requests, joins every thread, and drops every snapshot pin, so
//!   epoch GC provably reclaims all retained files.
//! * **Observability** — [`ServeMetrics`] (request/byte/rejection
//!   counters plus a latency histogram) surfaced through `Stats` and
//!   rendered `explain()`-style by [`MetricsSnapshot::render`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use sc::ScSession;
//! use sc_serve::{Client, ServeConfig, Server};
//!
//! let dir = tempfile::tempdir().unwrap();
//! let session = Arc::new(
//!     ScSession::builder().storage_dir(dir.path()).build().unwrap(),
//! );
//! let server = Server::start(session, ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let stats = client.stats().unwrap();
//! println!("{}", stats.render());
//! server.shutdown();
//! ```

mod cache;
mod client;
mod error;
mod metrics;
mod protocol;
mod server;

pub use cache::{CacheStats, SnapshotCache};
pub use client::{Client, StatsReport};
pub use error::{ErrorCode, Result, ServeError, WireError};
pub use metrics::{MetricsSnapshot, OpClass, Quantile, ServeMetrics, HIST_BUCKETS};
pub use protocol::{
    decode_request, encode_request, RefreshSummary, Request, CHUNK_SIZE, MAX_DEPTH, MAX_FRAME,
    MAX_NAME,
};
pub use server::{ServeConfig, Server, MAX_DRAINERS};
