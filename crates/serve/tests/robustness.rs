//! Protocol robustness: truncated, oversized, garbage, and mutated
//! frames, plus mid-frame disconnects, must each yield a typed error
//! response or a clean close — never a worker panic, never a hang. The
//! core of the suite is a seeded byte-mutation loop over valid frames,
//! in the spirit of `tests/storage_segments.rs`.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc::ScSession;
use sc_engine::exec::TableDelta;
use sc_engine::plan::LogicalPlan;
use sc_serve::{
    encode_request, Client, ErrorCode, Request, ServeConfig, ServeError, Server, MAX_DRAINERS,
    MAX_FRAME,
};
use sc_workload::engine_mvs::sales_pipeline;
use sc_workload::tpcds::TinyTpcds;

/// A small refreshed session serving the sales pipeline.
fn session(dir: &std::path::Path) -> Arc<ScSession> {
    let s = ScSession::builder()
        .storage_dir(dir)
        .memory_budget(8 << 20)
        .build()
        .unwrap();
    TinyTpcds::generate(0.05, 7).load_into(s.disk()).unwrap();
    for mv in sales_pipeline() {
        s.register_mv(mv).unwrap();
    }
    s.refresh().unwrap();
    Arc::new(s)
}

fn start_server(dir: &std::path::Path) -> Server {
    Server::start(
        session(dir),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

/// Raw connection helper: no client-side protocol smarts, so tests can
/// send arbitrary bytes.
fn raw_connect(server: &Server) -> TcpStream {
    let s = TcpStream::connect(server.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

fn send_raw_frame(stream: &mut TcpStream, payload: &[u8]) {
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(payload).unwrap();
}

enum RawReply {
    /// A complete frame came back (first byte is the opcode).
    Frame(Vec<u8>),
    /// The server closed the connection without answering.
    Closed,
}

/// Reads one frame or a clean close; panics on timeout (a hung server
/// is exactly the failure this suite exists to catch).
fn read_raw_reply(stream: &mut TcpStream) -> RawReply {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut header[got..]) {
            Ok(0) => {
                assert_eq!(got, 0, "server died mid-header");
                return RawReply::Closed;
            }
            Ok(n) => got += n,
            Err(e) => panic!("server did not answer within the timeout: {e}"),
        }
    }
    let len = u32::from_le_bytes(header);
    assert!(len <= MAX_FRAME, "server sent an oversized frame ({len})");
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload).expect("frame body");
    RawReply::Frame(payload)
}

fn valid_frames() -> Vec<Vec<u8>> {
    let plan = LogicalPlan::scan("rev_by_category").limit(16);
    let mut delta_rows = sc_engine::TableBuilder::new()
        .column("ss_sold_date_sk", sc_engine::DataType::Int64)
        .build();
    delta_rows
        .push_row(vec![sc_engine::Value::Int64(1)])
        .unwrap();
    vec![
        encode_request(&Request::ReadTable {
            table: "rev_by_category".into(),
        }),
        encode_request(&Request::Query { plan }),
        encode_request(&Request::Ingest {
            table: "unused_side_table".into(),
            delta: TableDelta::insert_only(delta_rows),
        }),
        encode_request(&Request::Stats),
    ]
}

/// The server must still serve correct responses (proof no worker died
/// or wedged).
fn assert_alive(server: &Server) {
    let mut client = Client::connect(server.addr()).unwrap();
    let (_, t) = client.read_table("rev_by_category").unwrap();
    assert!(t.num_rows() > 0);
}

#[test]
fn seeded_mutation_loop_never_panics_or_hangs() {
    let dir = tempfile::tempdir().unwrap();
    let server = start_server(dir.path());
    let frames = valid_frames();
    let mut rng = StdRng::seed_from_u64(0x5eede);
    let mut typed_errors = 0u32;
    for round in 0..250 {
        let mut payload = frames[rng.gen_range(0..frames.len())].clone();
        for _ in 0..rng.gen_range(1..=4usize) {
            let i = rng.gen_range(0..payload.len());
            let bit = rng.gen_range(0..8u32);
            payload[i] ^= 1 << bit;
        }
        let mut stream = raw_connect(&server);
        send_raw_frame(&mut stream, &payload);
        // Any of these is acceptable: a typed error, a well-formed
        // response (the mutation can leave the request valid), or a
        // clean close. A panic, a hang, or a malformed reply is not.
        match read_raw_reply(&mut stream) {
            RawReply::Frame(reply) => {
                let op = *reply.first().expect("non-empty reply");
                assert!(
                    (0x81..=0x85).contains(&op) || op == 0xEE,
                    "round {round}: unknown reply opcode {op:#04x}"
                );
                if op == 0xEE {
                    typed_errors += 1;
                }
            }
            RawReply::Closed => {}
        }
        if round % 50 == 0 {
            assert_alive(&server);
        }
    }
    assert!(
        typed_errors > 50,
        "mutations should mostly produce typed errors, got {typed_errors}"
    );
    assert_alive(&server);
    let final_metrics = server.shutdown();
    assert!(final_metrics.malformed > 0);
}

#[test]
fn truncated_frame_then_disconnect_closes_cleanly() {
    let dir = tempfile::tempdir().unwrap();
    let server = start_server(dir.path());
    for keep in [0usize, 1, 3, 7] {
        let payload = encode_request(&Request::ReadTable {
            table: "rev_by_category".into(),
        });
        let mut stream = raw_connect(&server);
        stream
            .write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        stream
            .write_all(&payload[..keep.min(payload.len())])
            .unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        // Mid-frame disconnect: the server must close without answering.
        match read_raw_reply(&mut stream) {
            RawReply::Closed => {}
            RawReply::Frame(f) => panic!("expected close, got opcode {:#04x}", f[0]),
        }
    }
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn partial_length_prefix_disconnect_closes_cleanly() {
    let dir = tempfile::tempdir().unwrap();
    let server = start_server(dir.path());
    let mut stream = raw_connect(&server);
    stream.write_all(&[7u8, 0]).unwrap(); // 2 of 4 header bytes
    stream.shutdown(Shutdown::Write).unwrap();
    match read_raw_reply(&mut stream) {
        RawReply::Closed => {}
        RawReply::Frame(f) => panic!("expected close, got opcode {:#04x}", f[0]),
    }
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_a_typed_error_then_close() {
    let dir = tempfile::tempdir().unwrap();
    let server = start_server(dir.path());
    let mut stream = raw_connect(&server);
    stream.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
    match read_raw_reply(&mut stream) {
        RawReply::Frame(reply) => {
            assert_eq!(reply[0], 0xEE);
            assert_eq!(reply[1], ErrorCode::Malformed as u8);
        }
        RawReply::Closed => panic!("expected a typed error before the close"),
    }
    // The stream cannot be resynced: the server must close after.
    match read_raw_reply(&mut stream) {
        RawReply::Closed => {}
        RawReply::Frame(_) => panic!("connection should be closed"),
    }
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn garbage_payload_gets_typed_error_and_connection_survives() {
    let dir = tempfile::tempdir().unwrap();
    let server = start_server(dir.path());
    let mut rng = StdRng::seed_from_u64(99);
    let mut stream = raw_connect(&server);
    for len in [1usize, 8, 100, 4096] {
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
        send_raw_frame(&mut stream, &garbage);
        match read_raw_reply(&mut stream) {
            RawReply::Frame(reply) => {
                // Garbage may accidentally decode (e.g. first byte 0x04
                // = Refresh); anything well-formed is fine, but a typed
                // malformed error is the common case.
                assert!(reply[0] == 0xEE || (0x81..=0x85).contains(&reply[0]));
            }
            RawReply::Closed => panic!("framing stayed intact; connection should survive"),
        }
    }
    // Same connection still serves a valid request: framing never broke.
    let payload = encode_request(&Request::Stats);
    send_raw_frame(&mut stream, &payload);
    match read_raw_reply(&mut stream) {
        RawReply::Frame(reply) => assert_eq!(reply[0], 0x85),
        RawReply::Closed => panic!("valid request after garbage must be served"),
    }
    server.shutdown();
}

#[test]
fn empty_frame_is_malformed_not_a_panic() {
    let dir = tempfile::tempdir().unwrap();
    let server = start_server(dir.path());
    let mut stream = raw_connect(&server);
    send_raw_frame(&mut stream, &[]);
    match read_raw_reply(&mut stream) {
        RawReply::Frame(reply) => {
            assert_eq!(reply[0], 0xEE);
            assert_eq!(reply[1], ErrorCode::Malformed as u8);
        }
        RawReply::Closed => panic!("expected a typed error"),
    }
    assert_alive(&server);
    server.shutdown();
}

#[test]
fn unknown_table_is_a_typed_engine_error() {
    let dir = tempfile::tempdir().unwrap();
    let server = start_server(dir.path());
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.read_table("no_such_table").unwrap_err();
    match err {
        ServeError::Remote(w) => {
            assert_eq!(w.code, ErrorCode::Engine);
            assert_eq!(w.kind, "unknown_table");
        }
        other => panic!("expected remote engine error, got {other}"),
    }
    // The connection survives a typed error.
    let (_, t) = client.read_table("rev_by_category").unwrap();
    assert!(t.num_rows() > 0);
    server.shutdown();
}

/// Pipelining must not weaken framing robustness: garbage sandwiched
/// between valid frames — all sent before reading a single response —
/// still yields responses strictly in order, with the garbage answered
/// by a typed error and the frames around it served normally.
#[test]
fn pipelined_garbage_between_valid_frames_answers_in_order() {
    let dir = tempfile::tempdir().unwrap();
    let server = start_server(dir.path());
    let mut stream = raw_connect(&server);

    send_raw_frame(
        &mut stream,
        &encode_request(&Request::ReadTable {
            table: "rev_by_category".into(),
        }),
    );
    send_raw_frame(&mut stream, &[0xFF; 16]); // unknown opcode
    send_raw_frame(&mut stream, &encode_request(&Request::Stats));

    // 1: the table response (header + declared chunks).
    let header = match read_raw_reply(&mut stream) {
        RawReply::Frame(f) => f,
        RawReply::Closed => panic!("expected a table header"),
    };
    assert_eq!(header[0], 0x81);
    let nchunks = u32::from_le_bytes(header[9..13].try_into().unwrap());
    assert!(nchunks >= 1);
    for _ in 0..nchunks {
        match read_raw_reply(&mut stream) {
            RawReply::Frame(f) => assert_eq!(f[0], 0x82),
            RawReply::Closed => panic!("server closed mid-table"),
        }
    }
    // 2: the garbage frame's typed error, in sequence.
    match read_raw_reply(&mut stream) {
        RawReply::Frame(f) => {
            assert_eq!(f[0], 0xEE);
            assert_eq!(f[1], ErrorCode::Malformed as u8);
        }
        RawReply::Closed => panic!("garbage mid-pipeline must not kill the connection"),
    }
    // 3: the stats reply — the connection survived in order.
    match read_raw_reply(&mut stream) {
        RawReply::Frame(f) => assert_eq!(f[0], 0x85),
        RawReply::Closed => panic!("valid frame after garbage must be served"),
    }
    server.shutdown();
}

#[cfg(target_os = "linux")]
fn live_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

/// A connection flood against a saturated server must not become a
/// thread flood: graceful-shed drainers are capped at [`MAX_DRAINERS`],
/// with excess rejections closed immediately.
#[cfg(target_os = "linux")]
#[test]
fn overload_flood_keeps_drainer_threads_bounded() {
    const FLOOD: usize = 64;
    let dir = tempfile::tempdir().unwrap();
    let server = Server::start(
        session(dir.path()),
        ServeConfig {
            workers: 1,
            backlog: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Park the single worker on a live connection.
    let mut first = Client::connect(server.addr()).unwrap();
    first.read_table("rev_by_category").unwrap();
    let baseline = live_threads();

    // Flood. Each socket writes a request and stays open, so every
    // granted drainer holds its thread for the full drain window —
    // worst case for an unbounded spawn-per-rejection design.
    let frame = encode_request(&Request::Stats);
    let mut flood = Vec::new();
    for _ in 0..FLOOD {
        let s = TcpStream::connect(server.addr()).unwrap();
        let mut framed = (frame.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&frame);
        // The server may already have dropped us at the drainer cap; a
        // failed write is exactly that fall-through, not a test failure.
        let _ = (&s).write_all(&framed);
        flood.push(s);
    }
    std::thread::sleep(Duration::from_millis(300));
    let during = live_threads();
    assert!(
        during <= baseline + MAX_DRAINERS + 2,
        "flood of {FLOOD} grew threads {baseline} -> {during}; drainers are unbounded"
    );
    drop(flood);

    // The admitted connection and the server both survived the flood.
    first.read_table("rev_by_category").unwrap();
    drop(first);
    let m = server.shutdown();
    assert!(
        m.rejected_overloaded >= FLOOD as u64,
        "every flooded connection must be counted as shed, got {}",
        m.rejected_overloaded
    );
}

#[test]
fn zero_deadline_rejects_every_request_with_deadline_error() {
    let dir = tempfile::tempdir().unwrap();
    let server = Server::start(
        session(dir.path()),
        ServeConfig {
            workers: 1,
            deadline: Duration::ZERO,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.read_table("rev_by_category").unwrap_err();
    match err {
        ServeError::Remote(w) => assert_eq!(w.code, ErrorCode::DeadlineExceeded),
        other => panic!("expected deadline error, got {other}"),
    }
    let m = server.shutdown();
    assert!(m.rejected_deadline > 0);
}
